package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// bruteForceLP finds the optimum of min c.x, rows, lo <= x <= hi by
// enumerating every vertex of the feasible region: all choices of n active
// hyperplanes among the constraint rows (as equalities) and the finite
// variable bounds, solved by Gaussian elimination and filtered for
// feasibility. All lower bounds are finite, so the region is pointed and a
// finite optimum — if one exists — is attained at an enumerated vertex.
// Returns (bestObjective, found); found is false for an infeasible region.
// The caller must keep the instance bounded (the enumerator cannot certify
// unboundedness).
func bruteForceLP(p *Problem, lo, hi []float64) (float64, bool) {
	n := p.NumVars
	type hyper struct {
		a   []float64
		rhs float64
	}
	var planes []hyper
	for _, c := range p.Constraints {
		a := make([]float64, n)
		for v, coeff := range c.Coeffs {
			a[v] = coeff
		}
		planes = append(planes, hyper{a, c.RHS})
	}
	for j := 0; j < n; j++ {
		a := make([]float64, n)
		a[j] = 1
		planes = append(planes, hyper{a, lo[j]})
		if !math.IsInf(hi[j], 1) {
			b := make([]float64, n)
			b[j] = 1
			planes = append(planes, hyper{b, hi[j]})
		}
	}

	feasible := func(x []float64) bool {
		const tol = 1e-6
		for j := 0; j < n; j++ {
			if x[j] < lo[j]-tol || x[j] > hi[j]+tol {
				return false
			}
		}
		for _, c := range p.Constraints {
			var lhs float64
			for v, coeff := range c.Coeffs {
				lhs += coeff * x[v]
			}
			switch c.Rel {
			case LE:
				if lhs > c.RHS+tol {
					return false
				}
			case GE:
				if lhs < c.RHS-tol {
					return false
				}
			case EQ:
				if math.Abs(lhs-c.RHS) > tol {
					return false
				}
			}
		}
		return true
	}

	best, found := math.Inf(1), false
	idx := make([]int, n)
	var rec func(start, k int)
	solveAndCheck := func() {
		// Gaussian elimination with partial pivoting on the n chosen planes.
		A := make([][]float64, n)
		for r := 0; r < n; r++ {
			A[r] = append(append([]float64(nil), planes[idx[r]].a...), planes[idx[r]].rhs)
		}
		for col := 0; col < n; col++ {
			piv, pivAbs := -1, 1e-9
			for r := col; r < n; r++ {
				if abs := math.Abs(A[r][col]); abs > pivAbs {
					piv, pivAbs = r, abs
				}
			}
			if piv < 0 {
				return // singular choice of planes
			}
			A[col], A[piv] = A[piv], A[col]
			f := 1 / A[col][col]
			for j := col; j <= n; j++ {
				A[col][j] *= f
			}
			for r := 0; r < n; r++ {
				if r == col {
					continue
				}
				g := A[r][col]
				if g == 0 {
					continue
				}
				for j := col; j <= n; j++ {
					A[r][j] -= g * A[col][j]
				}
			}
		}
		x := make([]float64, n)
		for r := 0; r < n; r++ {
			x[r] = A[r][n]
		}
		if !feasible(x) {
			return
		}
		found = true
		var obj float64
		for j := 0; j < n; j++ {
			if p.Objective != nil {
				obj += p.Objective[j] * x[j]
			}
		}
		if obj < best {
			best = obj
		}
	}
	rec = func(start, k int) {
		if k == n {
			solveAndCheck()
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// TestFuzzAgainstVertexEnumeration is the LP property test: random small
// LPs are solved by the legacy two-phase solver, the bounded cold solver,
// and a warm-started dual re-solve, and every optimum is cross-checked
// against brute-force vertex enumeration.
func TestFuzzAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 400
	if testing.Short() {
		trials = 80
	}
	checked, infeasibles := 0, 0
	for trial := 0; trial < trials; trial++ {
		p, lo, hi := randomBoundedProblem(rng)

		s, err := NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := s.SolveBounded(lo, hi, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status == Unbounded || sol.Status == IterLimit {
			continue // the enumerator cannot cross-check these
		}
		want, found := bruteForceLP(p, lo, hi)
		switch sol.Status {
		case Optimal:
			if !found {
				t.Fatalf("trial %d: solver found optimum %v, brute force says infeasible\n%+v lo=%v hi=%v",
					trial, sol.Objective, p, lo, hi)
			}
			if !approx(sol.Objective, want, 1e-5) {
				t.Fatalf("trial %d: solver optimum %v, brute force %v\n%+v lo=%v hi=%v",
					trial, sol.Objective, want, p, lo, hi)
			}
			checked++
		case Infeasible:
			if found {
				t.Fatalf("trial %d: solver says infeasible, brute force found vertex with objective %v\n%+v lo=%v hi=%v",
					trial, want, p, lo, hi)
			}
			infeasibles++
			continue
		}

		// Legacy solver with bounds expressed as rows must agree.
		rowP := &Problem{NumVars: p.NumVars, Objective: p.Objective}
		rowP.Constraints = append(rowP.Constraints, p.Constraints...)
		for j := 0; j < p.NumVars; j++ {
			if lo[j] > 0 {
				rowP.AddConstraint(GE, lo[j], map[int]float64{j: 1})
			}
			if !math.IsInf(hi[j], 1) {
				rowP.AddConstraint(LE, hi[j], map[int]float64{j: 1})
			}
		}
		legacy, err := Solve(rowP)
		if err != nil {
			t.Fatal(err)
		}
		if legacy.Status != Optimal || !approx(legacy.Objective, want, 1e-5) {
			t.Fatalf("trial %d: legacy got %v (%v), brute force %v", trial, legacy.Objective, legacy.Status, want)
		}

		// A warm dual re-solve of the same bounds from the optimal basis
		// must terminate immediately at the same optimum.
		warm, ok, err := s.SolveDual(s.Basis(), lo, hi, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok || warm.Status != Optimal || !approx(warm.Objective, want, 1e-5) {
			t.Fatalf("trial %d: identity warm re-solve diverged: ok=%v %+v want %v", trial, ok, warm, want)
		}
	}
	if checked < trials/4 {
		t.Errorf("only %d/%d trials produced a checkable optimum", checked, trials)
	}
	t.Logf("verified %d optima and %d infeasibilities against vertex enumeration", checked, infeasibles)
}

// degenerateProblem builds on randomBoundedProblem and then stresses the
// basis machinery: duplicated rows (primal-degenerate vertices, leaving-row
// ties), scaled copies of rows (rank-deficient row sets the LU ordering
// must pivot around), and sum rows (redundant constraints that put extra
// hyperplanes through existing vertices).
func degenerateProblem(rng *rand.Rand) (*Problem, []float64, []float64) {
	p, lo, hi := randomBoundedProblem(rng)
	base := len(p.Constraints)
	for _, c := range p.Constraints[:base] {
		switch rng.Intn(3) {
		case 0: // exact duplicate
			p.AddConstraint(c.Rel, c.RHS, c.Coeffs)
		case 1: // scaled copy: dependent row, consistent by construction
			f := float64(1 + rng.Intn(3))
			terms := map[int]float64{}
			for v, coeff := range c.Coeffs {
				terms[v] = f * coeff
			}
			p.AddConstraint(c.Rel, f*c.RHS, terms)
		case 2: // sum with another row (LE+LE stays valid; else duplicate)
			other := p.Constraints[rng.Intn(base)]
			if c.Rel == LE && other.Rel == LE {
				terms := map[int]float64{}
				for v, coeff := range c.Coeffs {
					terms[v] = coeff
				}
				for v, coeff := range other.Coeffs {
					terms[v] += coeff
				}
				p.AddConstraint(LE, c.RHS+other.RHS, terms)
			} else {
				p.AddConstraint(c.Rel, c.RHS, c.Coeffs)
			}
		}
	}
	return p, lo, hi
}

// TestFuzzSparseVsDenseKernels cross-checks the three simplex kernels —
// Forrest-Tomlin (the default), product-form eta, and the dense tableau
// oracle — on random degenerate and rank-deficient problems: cold solves
// must agree on status and optimum, for both sparse kernels at several
// refactorisation cadences (refactorEveryOverride 1 hits a refactorisation
// boundary on every pivot), and warm dual re-solves after a bound change
// must agree too. Against the dense kernel only the solution is compared —
// it assigns pivot rows differently inside the factorisation, which is
// allowed. Between the FT and eta kernels the contract is stronger: at
// refactorEveryOverride=1 both reinstall the identical canonical factor
// after every pivot, so (unless a pinned-row refactorisation went singular
// and the representations were allowed to diverge) their pivot sequences
// and final bases must be bit-identical.
func TestFuzzSparseVsDenseKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 600
	if testing.Short() {
		trials = 120
	}
	agreed, basesChecked, ftUpdates := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		var p *Problem
		var lo, hi []float64
		if trial%2 == 0 {
			p, lo, hi = degenerateProblem(rng)
		} else {
			p, lo, hi = randomBoundedProblem(rng)
		}

		dense, err := NewDenseSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		dsol, err := dense.SolveBounded(lo, hi, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if dsol.Status == IterLimit {
			continue
		}

		// Both sparse kernels at the default cadence and at forced
		// refactorisation boundaries (every pivot, every 2nd, every 3rd).
		for _, every := range []int{0, 1, 2, 3} {
			ft, err := NewSolver(p)
			if err != nil {
				t.Fatal(err)
			}
			ft.refactorEveryOverride = every
			fsol, err := ft.SolveBounded(lo, hi, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			eta, err := NewEtaSolver(p)
			if err != nil {
				t.Fatal(err)
			}
			eta.refactorEveryOverride = every
			esol, err := eta.SolveBounded(lo, hi, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			ftUpdates += fsol.FTUpdates
			if esol.FTUpdates != 0 {
				t.Fatalf("trial %d: eta-kernel solution reports FT updates", trial)
			}
			for _, ssol := range []*Solution{fsol, esol} {
				if ssol.Status == IterLimit {
					continue
				}
				if ssol.Status != dsol.Status {
					t.Fatalf("trial %d every=%d: sparse status %v, dense %v\n%+v lo=%v hi=%v",
						trial, every, ssol.Status, dsol.Status, p, lo, hi)
				}
				if ssol.Status == Optimal && !approx(ssol.Objective, dsol.Objective, 1e-5) {
					t.Fatalf("trial %d every=%d: sparse optimum %v, dense %v\n%+v lo=%v hi=%v",
						trial, every, ssol.Objective, dsol.Objective, p, lo, hi)
				}
				if !ssol.Sparse {
					t.Fatalf("trial %d: sparse solution not flagged Sparse", trial)
				}
			}

			// FT vs eta bit-identity at a refactorisation on every pivot.
			if every == 1 && fsol.Status != IterLimit && esol.Status != IterLimit &&
				fsol.SparseSingularRefactors == 0 && esol.SparseSingularRefactors == 0 {
				if fsol.Status != esol.Status ||
					math.Float64bits(fsol.Objective) != math.Float64bits(esol.Objective) ||
					fsol.Phase1Pivots != esol.Phase1Pivots ||
					fsol.Phase2Pivots != esol.Phase2Pivots ||
					fsol.BlandPivots != esol.BlandPivots {
					t.Fatalf("trial %d: FT/eta pivot paths diverged at every=1:\nft  %+v\neta %+v\n%+v lo=%v hi=%v",
						trial, fsol, esol, p, lo, hi)
				}
				fb, eb := ft.Basis(), eta.Basis()
				for i := range fb.Basic {
					if fb.Basic[i] != eb.Basic[i] {
						t.Fatalf("trial %d: FT/eta final bases differ at row %d: %d vs %d",
							trial, i, fb.Basic[i], eb.Basic[i])
					}
				}
				for j := range fb.AtUpper {
					if fb.AtUpper[j] != eb.AtUpper[j] {
						t.Fatalf("trial %d: FT/eta AtUpper differ at col %d", trial, j)
					}
				}
				basesChecked++
			}

			if fsol.Status != Optimal || every != 1 {
				continue
			}
			// Warm dual re-solve cross-check: tighten a random upper bound
			// (the dual-simplex re-entry milp warm starts rely on) from
			// each kernel's own optimal basis.
			j := rng.Intn(p.NumVars)
			hi2 := append([]float64(nil), hi...)
			ub := hi2[j]
			if math.IsInf(ub, 1) {
				ub = 4
			}
			hi2[j] = math.Max(lo[j], ub-1)
			swarm, sok, err := ft.SolveDual(ft.Basis(), lo, hi2, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			ewarm, eok, err := eta.SolveDual(eta.Basis(), lo, hi2, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			dwarm, dok, err := dense.SolveDual(dense.Basis(), lo, hi2, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			if !sok || !dok || !eok || swarm.Status == IterLimit || dwarm.Status == IterLimit || ewarm.Status == IterLimit {
				continue // warm re-entry declined; cold fallback is the caller's job
			}
			if swarm.Status != dwarm.Status || ewarm.Status != dwarm.Status {
				t.Fatalf("trial %d: warm status ft=%v eta=%v dense=%v", trial, swarm.Status, ewarm.Status, dwarm.Status)
			}
			if swarm.Status == Optimal && (!approx(swarm.Objective, dwarm.Objective, 1e-5) || !approx(ewarm.Objective, dwarm.Objective, 1e-5)) {
				t.Fatalf("trial %d: warm optima ft=%v eta=%v dense=%v\n%+v lo=%v hi2=%v",
					trial, swarm.Objective, ewarm.Objective, dwarm.Objective, p, lo, hi2)
			}
		}
		agreed++
	}
	if agreed < trials*3/4 {
		t.Errorf("only %d/%d trials were cross-checked", agreed, trials)
	}
	if basesChecked == 0 {
		t.Error("no trial reached the FT-vs-eta basis identity check")
	}
	if ftUpdates == 0 {
		t.Error("no trial exercised a Forrest-Tomlin update")
	}
	t.Logf("cross-checked %d/%d trials across 4 refactorisation cadences; %d bit-identical FT/eta bases, %d FT updates",
		agreed, trials, basesChecked, ftUpdates)
}
