package lp

// Forrest-Tomlin basis updates.
//
// The eta kernel (sparse.go) represents basis changes as a product-form
// eta file layered over a frozen LU factorisation: every FTRAN/BTRAN pays
// for the whole file, so pivot cost degrades linearly with the distance to
// the last refactorisation. The Forrest-Tomlin kernel updates the U factor
// itself: a basis exchange replaces one U column with the spike
// w = L^-1 a_q (transformed through the earlier FT etas), cyclically
// permutes it to the last elimination position, and restores triangularity
// by eliminating the leaving row's remaining U entries with one composite
// row eta. FTRAN/BTRAN then cost the (permuted, slightly filled) factor
// itself — the representation tightens instead of deepening, and the eta
// file holds one *row* transform per pivot whose length is the leaving
// row's U fill, typically far below a full product-form column.
//
// Representation. U is held column-wise in m slots. Slot t carries its
// pivot row (slotPiv), reciprocal pivot (slotInv) and off-pivot column
// entries; order[] is the elimination-position permutation of slots
// (identity after a refactorisation, cyclically rotated by each update).
// Triangularity invariant: every stored entry of the column at position p
// sits in a row whose own slot holds an earlier position. Columns are
// copy-on-write over the pristine luFactor arrays — installing a
// refactorised base is O(m), and only columns an update actually edits are
// materialised into kernel-owned arenas. A row-wise index (rows[r]: the
// slots holding an entry at row r) is built lazily at the first update and
// maintained incrementally; it drives both the update elimination and the
// O(row fill) strip of the leaving row.
//
// The update at leaving row r, entering column q:
//
//	w  = (FT etas) L^-1 a_q                 (spike, recomputed sparsely)
//	mu = w[r] - sum_j m_j w[p_j]            (new diagonal)
//
// where the pairs (p_j, m_j) eliminate row r's stored U entries left to
// right by position: m_j = u_rj / u_pj,pj, with fill propagated through
// rows[p_j] strictly rightward (the invariant above guarantees it). The
// pairs form ONE row eta E: (Ev)[r] = v[r] - sum m_j v[p_j], applied
// ascending in FTRAN between L and U, transposed descending in BTRAN.
// |mu| <= pivTol rejects the update (roll back, refactorise); a rejected
// refactorisation falls back to the product-form eta file (etaMode) so the
// solve always finishes on some representation.
//
// Refactorisation policy: every defaultFTRefactorEvery updates
// (refactorEveryOverride replaces it in tests), or earlier when the
// accumulated fill — spike entries plus eta pairs — crosses half the
// pristine factored nonzeros (plus a small slack so tiny factors don't
// thrash). Rebuilds go through the shared Markowitz-ordered elimination in
// sparse.go with row labels pinned, exactly like the eta kernel, so at
// refactorEveryOverride=1 both kernels reinstall the identical factor
// after every pivot and their pivot sequences are bit-identical — the
// cross-check the fuzz suite leans on.

import "math"

// defaultFTRefactorEvery is the Forrest-Tomlin update count that triggers
// a periodic refactorisation. FT updates keep the factor tight, so the
// interval is much longer than the eta kernel's.
const defaultFTRefactorEvery = 64

// ftFillSlack is the absolute fill allowance added to the relative
// fill-growth refactorisation trigger, so factors with a handful of
// nonzeros don't refactorise on every update.
const ftFillSlack = 16

// singularRetryInterval is how many pivots the periodic refactorisation
// triggers stay silent after a pinned-row rebuild came out singular,
// bounding the cost of repeated failed elimination attempts to at most
// one per interval while still escaping the degenerate basis that caused
// the failure.
const singularRetryInterval = 8

// ftEntry is one row-index record: column slot t holds val at this row.
type ftEntry struct {
	slot int32
	val  float64
}

// ftKernel implements kernel with Forrest-Tomlin updates over the shared
// sparse machinery. It owns the U representation; the embedded
// sparseKernel supplies the pristine matrix, scratch arenas, the
// Markowitz/peel elimination ordering, the factor builder, and the
// product-form eta file used as the etaMode fallback. Composition, not
// embedding: sparseKernel's own methods must never resolve to FT state.
type ftKernel struct {
	sk *sparseKernel

	base *luFactor // pristine factor under the updates; nil = slack identity

	// U slots. Slot t's column entries live in colRow/colVal[t] once
	// cowed[t]; before that they alias base's uRow/uVal (or are empty for
	// the slack identity).
	slotPiv []int32   // len m: pivot row of slot t (stable across updates)
	slotInv []float64 // len m: reciprocal diagonal of slot t
	cowed   []bool    // len m
	colRow  [][]int32
	colVal  [][]float64

	order    []int32 // len m: slot at each elimination position
	orderPos []int32 // len m: position of each slot
	rowSlot  []int32 // len m: slot whose pivot row is r

	rows      [][]ftEntry // row r -> slots holding an entry at r
	rowsBuilt bool

	// FT row-eta file: eta e targets row ftRow[e] with the multiplier
	// pairs ftRowIdx/ftVal[ftStart[e]:ftStart[e+1]].
	ftRow    []int32
	ftStart  []int32 // len(ftRow)+1
	ftRowIdx []int32
	ftVal    []float64

	// etaMode: a rejected update whose rescue refactorisation also failed
	// parks the kernel on the product-form eta file (the sparseKernel
	// arrays) layered over the frozen FT representation; a later
	// successful refactorisation escapes back to FT updates.
	etaMode bool

	wScratch   []float64 // len m: spike work
	posScratch []float64 // len m: position-indexed elimination row

	baseNnz  int // pristine factored nonzeros at the last refactorisation
	addedNnz int // spike entries + eta pairs accumulated since
	updates  int // FT updates since the last refactorisation

	// rebuildCooloff suppresses the periodic refactorisation triggers for
	// this many pivots after a pinned-row rebuild came out singular. The
	// singularity is a property of the basis the rescue was attempted at,
	// not of the solve: a later basis usually rebuilds fine, so the
	// kernel retries on a deterministic cadence instead of freezing
	// refactorisation — an unboundedly growing eta file turns the
	// remaining pivots quadratic, which is the one failure mode this
	// kernel must never introduce.
	rebuildCooloff int

	// Per-solve statistics (reset by beginSolve).
	stUpdates   int
	stSpikeNNZ  int
	stFallbacks int
}

func newFTKernel(s *Solver, p *Problem) *ftKernel {
	m := len(p.Constraints)
	k := &ftKernel{
		sk:         newSparseKernel(s, p),
		slotPiv:    make([]int32, m),
		slotInv:    make([]float64, m),
		cowed:      make([]bool, m),
		colRow:     make([][]int32, m),
		colVal:     make([][]float64, m),
		order:      make([]int32, m),
		orderPos:   make([]int32, m),
		rowSlot:    make([]int32, m),
		rows:       make([][]ftEntry, m),
		wScratch:   make([]float64, m),
		posScratch: make([]float64, m),
	}
	k.ftStart = append(k.ftStart, 0)
	k.installBase(nil)
	return k
}

func (k *ftKernel) beginSolve() {
	k.sk.beginSolve()
	k.stUpdates, k.stSpikeNNZ, k.stFallbacks = 0, 0, 0
}

func (k *ftKernel) solveStats(sol *Solution) {
	k.sk.solveStats(sol)
	sol.FTUpdates = k.stUpdates
	sol.FTSpikeNNZ = k.stSpikeNNZ
	sol.FTFallbacks = k.stFallbacks
}

// colEntries returns slot t's off-pivot column entries without copying.
func (k *ftKernel) colEntries(t int32) ([]int32, []float64) {
	if k.cowed[t] {
		return k.colRow[t], k.colVal[t]
	}
	if f := k.base; f != nil {
		return f.uRow[f.uStart[t]:f.uStart[t+1]], f.uVal[f.uStart[t]:f.uStart[t+1]]
	}
	return nil, nil
}

// materialize copies slot t's column into the kernel-owned arena so it can
// be edited (copy-on-write over the shared, immutable base factor).
func (k *ftKernel) materialize(t int32) {
	if k.cowed[t] {
		return
	}
	rs, vs := k.colEntries(t)
	k.colRow[t] = append(k.colRow[t][:0], rs...)
	k.colVal[t] = append(k.colVal[t][:0], vs...)
	k.cowed[t] = true
}

// installBase points the slot file at a fresh factor (nil: the slack
// identity) in O(m): identity order, no cowed columns, empty eta files,
// etaMode off. The factor is immutable and may be shared (memoised on a
// Basis snapshot), which is exactly why columns are copy-on-write.
func (k *ftKernel) installBase(f *luFactor) {
	m := k.sk.s.m
	k.base = f
	for t := 0; t < m; t++ {
		if f != nil {
			k.slotPiv[t] = f.piv[t]
			k.slotInv[t] = f.inv[t]
		} else {
			k.slotPiv[t] = int32(t)
			k.slotInv[t] = 1
		}
		k.cowed[t] = false
		k.order[t] = int32(t)
		k.orderPos[t] = int32(t)
		k.rowSlot[k.slotPiv[t]] = int32(t)
	}
	k.rowsBuilt = false
	k.ftRow = k.ftRow[:0]
	k.ftStart = k.ftStart[:1]
	k.ftRowIdx = k.ftRowIdx[:0]
	k.ftVal = k.ftVal[:0]
	k.etaMode = false
	k.sk.resetEtas()
	k.updates = 0
	k.addedNnz = 0
	k.baseNnz = m
	if f != nil {
		k.baseNnz += len(f.lIdx) + len(f.uRow)
	}
}

// buildRows constructs the row-wise index of the U file; called lazily at
// the first update after a refactorisation and maintained incrementally
// from then on.
func (k *ftKernel) buildRows() {
	m := k.sk.s.m
	for r := 0; r < m; r++ {
		k.rows[r] = k.rows[r][:0]
	}
	for t := 0; t < m; t++ {
		rs, vs := k.colEntries(int32(t))
		for q, r := range rs {
			k.rows[r] = append(k.rows[r], ftEntry{slot: int32(t), val: vs[q]})
		}
	}
	k.rowsBuilt = true
}

// removeSlotFromRow drops column slot t's record from row r's index
// (swap-remove: list order is scratch state, not numerics).
func (k *ftKernel) removeSlotFromRow(r, t int32) {
	list := k.rows[r]
	for q := range list {
		if list[q].slot == t {
			last := len(list) - 1
			list[q] = list[last]
			k.rows[r] = list[:last]
			return
		}
	}
}

// removeRowFromCol strips the entry at row r from column slot t,
// materialising the column first.
func (k *ftKernel) removeRowFromCol(t, r int32) {
	k.materialize(t)
	rs, vs := k.colRow[t], k.colVal[t]
	for q := range rs {
		if rs[q] == r {
			last := len(rs) - 1
			rs[q], vs[q] = rs[last], vs[last]
			k.colRow[t] = rs[:last]
			k.colVal[t] = vs[:last]
			return
		}
	}
}

// applyFTEtas runs the FT row etas forward (FTRAN order):
// v[r] -= sum m_j v[p_j].
func (k *ftKernel) applyFTEtas(v []float64) {
	for e := 0; e < len(k.ftRow); e++ {
		acc := v[k.ftRow[e]]
		for q := k.ftStart[e]; q < k.ftStart[e+1]; q++ {
			acc -= k.ftVal[q] * v[k.ftRowIdx[q]]
		}
		v[k.ftRow[e]] = acc
	}
}

// applyFTEtasT runs the transposed FT row etas backward (BTRAN order):
// v[p_j] -= m_j v[r].
func (k *ftKernel) applyFTEtasT(v []float64) {
	for e := len(k.ftRow) - 1; e >= 0; e-- {
		vr := v[k.ftRow[e]]
		if vr != 0 {
			for q := k.ftStart[e]; q < k.ftStart[e+1]; q++ {
				v[k.ftRowIdx[q]] -= k.ftVal[q] * vr
			}
		}
	}
}

// solveU runs the backward column-oriented U sweep over the slot file in
// elimination-position order.
func (k *ftKernel) solveU(v []float64) {
	for pos := len(k.order) - 1; pos >= 0; pos-- {
		t := k.order[pos]
		r := k.slotPiv[t]
		x := v[r] * k.slotInv[t]
		if x != 0 {
			rs, vs := k.colEntries(t)
			for q := range rs {
				v[rs[q]] -= vs[q] * x
			}
		}
		v[r] = x
	}
}

// solveUT runs the forward U^T sweep (BTRAN counterpart of solveU).
func (k *ftKernel) solveUT(v []float64) {
	for pos := 0; pos < len(k.order); pos++ {
		t := k.order[pos]
		r := k.slotPiv[t]
		acc := v[r]
		rs, vs := k.colEntries(t)
		for q := range rs {
			acc -= vs[q] * v[rs[q]]
		}
		v[r] = acc * k.slotInv[t]
	}
}

// ftran overwrites v with B^-1 v: L, FT row etas, the updated U, then the
// product-form fallback file (empty unless etaMode engaged).
func (k *ftKernel) ftran(v []float64) {
	if k.base != nil {
		k.base.ftranL(v)
	}
	k.applyFTEtas(v)
	k.solveU(v)
	k.sk.applyEtas(v)
}

// btran overwrites v with B^-T v: the exact transpose of ftran, reversed.
func (k *ftKernel) btran(v []float64) {
	k.sk.applyEtasT(v)
	k.solveUT(v)
	k.applyFTEtasT(v)
	if k.base != nil {
		k.base.btranLT(v)
	}
}

func (k *ftKernel) loadSlack() {
	k.sk.loadSlack()
	k.installBase(nil)
}

func (k *ftKernel) column(j int) []float64 {
	k.sk.scatter(k.sk.colScratch, j)
	k.ftran(k.sk.colScratch)
	return k.sk.colScratch
}

func (k *ftKernel) row(i int) []float64 { return k.sk.rowWith(k, i) }

func (k *ftKernel) computeRHSBar() { k.sk.computeRHSBarWith(k) }
func (k *ftKernel) computeD()      { k.sk.priceIntoWith(k, k.sk.s.d, k.sk.s.obj) }
func (k *ftKernel) computePert()   { k.sk.priceIntoWith(k, k.sk.s.pert, k.sk.s.pert0) }
func (k *ftKernel) computeXB()     { k.sk.computeXBWith(k) }

// refactorize mirrors sparseKernel.refactorize — same memoisation, same
// canonical elimination — but installs the factor as the FT base.
func (k *ftKernel) refactorize(bas *Basis) bool {
	sk := k.sk
	s := sk.s
	sk.resetEtas()
	sk.rowValidFor = -1

	if f := bas.factor.Load(); f != nil && f.sig == sk.sig {
		copy(s.basis, f.perm)
		k.installBase(f)
		k.installStats(f)
		return true
	}

	sk.orderBasisColumns()
	if sk.buildTmp == nil {
		sk.buildTmp = &luFactor{}
	}
	if !sk.buildFactorInto(sk.buildTmp, false) {
		return false // singular within tolerance: caller solves cold
	}
	f := sk.buildTmp.clone()
	bas.factor.Store(f)
	copy(s.basis, f.perm)
	k.installBase(f)
	k.installStats(f)
	return true
}

// installStats is sparseKernel.installStats routed through the FT
// representation's FTRAN/BTRAN.
func (k *ftKernel) installStats(f *luFactor) {
	k.sk.stRefactor++
	k.sk.stFill += f.fill
	k.computeRHSBar()
	k.computeD()
}

// midRefactor rebuilds the factor mid-solve and installs it as a fresh FT
// base (collapsing the update files and escaping etaMode). The pinned-row
// elimination is tried first — keeping labels in place costs nothing when
// it works — but when the current assignment forces a too-small diagonal
// the rebuild falls back to free pivot selection and relabels: the heading
// is re-derived from the new pivot assignment, exactly like a warm-start
// refactorize, and every derived vector below is recomputed in the new
// order. (The eta oracle keeps the seed's freeze-on-singular semantics:
// it only rebuilds at cadence bases, where a singular pinned elimination
// signals real trouble rather than a degenerate moment. The FT kernel, by
// contrast, asks for rescue rebuilds precisely at numerically sick bases,
// so a retry path is load-bearing.) Returns false only when even the free
// elimination goes singular; the representation stays valid, and the
// periodic triggers back off for singularRetryInterval pivots.
func (k *ftKernel) midRefactor() bool {
	sk := k.sk
	s := sk.s
	if sk.noMoreRefactor {
		return false
	}
	for r := 0; r < s.m; r++ {
		sk.rowOf[s.basis[r]] = int32(r)
	}
	sk.orderBasisColumns()
	dst := sk.midFactor[sk.midNext]
	if dst == nil {
		dst = &luFactor{}
		sk.midFactor[sk.midNext] = dst
	}
	copy(sk.xbScratch, s.xB)
	if !sk.buildFactorInto(dst, true) {
		sk.stSingular++
		if !sk.buildFactorInto(dst, false) {
			k.rebuildCooloff = singularRetryInterval
			return false
		}
		// Free elimination moved the row labels. Carry each basic
		// variable's incrementally maintained value to its new row first
		// (rowOf still holds the old assignment), so the accuracy check
		// below keeps comparing like with like, then re-derive the basis
		// heading from the new pivot assignment.
		for r := 0; r < s.m; r++ {
			sk.work[r] = s.xB[sk.rowOf[dst.perm[r]]]
		}
		copy(sk.xbScratch, sk.work)
		copy(s.basis, dst.perm)
	}
	k.rebuildCooloff = 0
	sk.midNext ^= 1
	k.installBase(dst)
	sk.rowValidFor = -1
	sk.stRefactor++
	sk.stFill += dst.fill
	k.computeRHSBar()
	k.computeD()
	if s.usePert {
		k.computePert()
	}
	// Accuracy check, identical to the eta kernel's: the incrementally
	// maintained basic values (snapshotted above, permuted if the rebuild
	// relabelled) against their recomputation through the fresh factor.
	k.computeXB()
	for i := 0; i < s.m; i++ {
		if math.Abs(sk.xbScratch[i]-s.xB[i]) > refactorAccTol {
			sk.stAccFail++
			break
		}
	}
	return true
}

// ftUpdate applies the Forrest-Tomlin exchange at the leaving row for the
// entering column. Returns false (state rolled back, representation
// untouched) when the new diagonal is numerically unacceptable.
func (k *ftKernel) ftUpdate(leave, enter int) bool {
	sk := k.sk
	s := sk.s
	m := s.m

	// Spike w = (FT etas) L^-1 a_enter: the entering column transformed up
	// to, but not through, the U file. colScratch holds the fully
	// transformed column the ratio test used and must stay intact for the
	// rhsBar sweep, hence the dedicated scratch.
	w := k.wScratch
	sk.scatter(w, enter)
	if k.base != nil {
		k.base.ftranL(w)
	}
	k.applyFTEtas(w)

	if !k.rowsBuilt {
		k.buildRows()
	}

	t0 := k.rowSlot[leave]
	pos0 := int(k.orderPos[t0])

	// Row `leave`'s stored U entries, gathered by elimination position
	// (the triangularity invariant puts them all past pos0), then
	// eliminated left to right. Each step records one multiplier pair of
	// the composite row eta, folds the pivot row's spike entry into the
	// new diagonal mu, and propagates fill strictly rightward through the
	// pivot row's index entries.
	ps := k.posScratch
	rlist := k.rows[int32(leave)]
	for _, e := range rlist {
		ps[k.orderPos[e.slot]] = e.val
	}

	mu := w[leave]
	etaBase := len(k.ftRowIdx)
	for pos := pos0 + 1; pos < m; pos++ {
		val := ps[pos]
		if val == 0 {
			continue
		}
		ps[pos] = 0
		t := k.order[pos]
		coef := val * k.slotInv[t]
		p := k.slotPiv[t]
		k.ftRowIdx = append(k.ftRowIdx, p)
		k.ftVal = append(k.ftVal, coef)
		mu -= coef * w[p]
		for _, e := range k.rows[p] {
			if e.slot == t0 {
				continue // the column being replaced by the spike
			}
			ps[k.orderPos[e.slot]] -= coef * e.val
		}
	}

	if math.Abs(mu) <= pivTol {
		k.ftRowIdx = k.ftRowIdx[:etaBase]
		k.ftVal = k.ftVal[:etaBase]
		return false
	}

	// Commit. Strip row `leave` from the columns that stored it (the
	// elimination zeroed them; the eta carries the arithmetic), drop the
	// replaced column from the row index, and rotate it out of the order.
	for _, e := range rlist {
		k.removeRowFromCol(e.slot, int32(leave))
	}
	k.rows[int32(leave)] = rlist[:0]
	oldRows, _ := k.colEntries(t0)
	for _, r := range oldRows {
		k.removeSlotFromRow(r, t0)
	}
	copy(k.order[pos0:], k.order[pos0+1:])
	k.order[m-1] = t0
	for pos := pos0; pos < m; pos++ {
		k.orderPos[k.order[pos]] = int32(pos)
	}

	// The spike takes the freed slot at the last position: same pivot row
	// (labels never move), diagonal mu, off-pivot entries w's nonzeros in
	// ascending row order.
	k.slotInv[t0] = 1 / mu
	rs := k.colRow[t0][:0]
	vs := k.colVal[t0][:0]
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		if f := w[i]; f != 0 {
			rs = append(rs, int32(i))
			vs = append(vs, f)
			k.rows[i] = append(k.rows[i], ftEntry{slot: t0, val: f})
		}
	}
	k.colRow[t0], k.colVal[t0] = rs, vs
	k.cowed[t0] = true

	etaLen := len(k.ftRowIdx) - etaBase
	if etaLen > 0 {
		k.ftRow = append(k.ftRow, int32(leave))
		k.ftStart = append(k.ftStart, int32(len(k.ftRowIdx)))
	}

	k.updates++
	k.stUpdates++
	k.stSpikeNNZ += len(rs)
	k.addedNnz += len(rs) + etaLen
	if h := s.ftSpikeH; h != nil {
		h.Record(int64(len(rs)))
	}
	return true
}

func (k *ftKernel) pivot(leave, enter int) {
	sk := k.sk
	s := sk.s
	// The reduced-cost update needs row `leave` of the pre-pivot tableau;
	// see sparseKernel.pivot.
	if sk.rowValidFor != leave {
		k.row(leave)
	}
	alpha := sk.rowScratch
	col := sk.colScratch // FTRAN'd entering column, fetched by the pivot loop
	inv := 1 / col[leave]

	refactored := false
	if !k.etaMode {
		if !k.ftUpdate(leave, enter) {
			// Rejected update: refactorise for the post-pivot basis (the
			// Solver has already exchanged it) — that recomputes rhsBar,
			// the cost rows and xB from pristine data, so the incremental
			// sweeps below are skipped. If the rescue also fails, park on
			// the product-form eta file.
			if k.midRefactor() {
				refactored = true
			} else {
				k.etaMode = true
				k.stFallbacks++
			}
		}
	}

	if !refactored {
		// Apply the pivot to rhsBar with the dense kernel's arithmetic; in
		// etaMode, capture the product-form eta in the same sweep, exactly
		// like the eta kernel.
		rb := s.rhsBar[leave] * inv
		if k.etaMode {
			for i := 0; i < s.m; i++ {
				if i == leave {
					continue
				}
				if f := col[i]; f != 0 {
					sk.etaIdx = append(sk.etaIdx, int32(i))
					sk.etaVal = append(sk.etaVal, f)
					s.rhsBar[i] -= f * rb
				}
			}
			sk.etaPiv = append(sk.etaPiv, int32(leave))
			sk.etaInv = append(sk.etaInv, inv)
			sk.etaStart = append(sk.etaStart, int32(len(sk.etaIdx)))
			if n := len(sk.etaPiv); n > sk.stEtaPeak {
				sk.stEtaPeak = n
			}
		} else {
			for i := 0; i < s.m; i++ {
				if i == leave {
					continue
				}
				if f := col[i]; f != 0 {
					s.rhsBar[i] -= f * rb
				}
			}
		}
		s.rhsBar[leave] = rb
		sk.priceUpdate(alpha, inv, enter)
	}
	sk.rowValidFor = -1

	// Periodic refactorisation. In FT mode: update count (long default
	// interval, the override replaces it) or accumulated fill crossing
	// half the pristine factored nonzeros. In etaMode: the eta kernel's
	// triggers, and a success escapes back to FT updates. A recent
	// singular rebuild backs the triggers off for a few pivots so failed
	// elimination attempts stay amortised.
	if k.rebuildCooloff > 0 {
		k.rebuildCooloff--
	} else if !sk.noMoreRefactor && !refactored {
		if k.etaMode {
			every := defaultRefactorEvery
			if s.refactorEveryOverride > 0 {
				every = s.refactorEveryOverride
			}
			base := k.baseNnz
			if len(sk.etaPiv) >= every || len(sk.etaIdx) >= 4*base {
				k.midRefactor()
			}
		} else if k.updates > 0 {
			every := defaultFTRefactorEvery
			if s.refactorEveryOverride > 0 {
				every = s.refactorEveryOverride
			}
			if k.updates >= every || 2*k.addedNnz >= k.baseNnz+ftFillSlack {
				k.midRefactor()
			}
		}
	}
}
