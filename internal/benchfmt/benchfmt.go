// Package benchfmt defines the dated BENCH_*.json snapshot schema shared
// by cmd/bench (synthesis micro-benchmarks) and cmd/loadgen (serving
// replay): one Snapshot per file, one Entry per measured name, plus the
// optional cold/warm cache sweep. Keeping the schema in one place lets
// `bench -compare` gate any producer's snapshots — a loadgen serving
// profile regresses the same way a synthesis benchmark does.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Entry is one measured benchmark: a synthesis pair
// ("Synthesize/MWD/SRing"), or a serving replay ("Serve/MWD/SRing").
type Entry struct {
	Name        string  `json:"name"`
	Parallelism int     `json:"parallelism"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Runs        int     `json:"runs"`
	// MILPGap is the relative optimality gap of the MILP assignment (0
	// means proven optimal); present only when the MILP ran.
	MILPGap *float64 `json:"milp_gap,omitempty"`
	// MILPNodes is the branch-and-bound node count of the MILP
	// assignment. On time-limited apps (MPEG) it is the solver's
	// throughput metric: more nodes in the same budget means faster LPs.
	MILPNodes int64 `json:"milp_nodes,omitempty"`
	// TimeLimitHit reports that the MILP search was cut off by its
	// wall-clock budget rather than finishing.
	TimeLimitHit bool `json:"time_limit_hit,omitempty"`
	// StageNs holds the per-pipeline-stage latency percentiles observed
	// across this entry's iterations (pipeline.stage.*.ns registry
	// histograms, bracketed by snapshots), keyed by stage name. For
	// serving entries the same field carries request-latency percentiles
	// under the "request" key.
	StageNs map[string]StagePct `json:"stage_ns,omitempty"`
	// Counters holds selected registry counter deltas observed across
	// this entry's iterations — the solver-internals the latency numbers
	// alone cannot explain (milp.cuts.*, lp.rows.appended). Absent on
	// entries that predate the field or ran without the MILP.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// StagePct is one stage's latency distribution, in nanoseconds.
type StagePct struct {
	P50 int64 `json:"p50"`
	P99 int64 `json:"p99"`
}

// StageNames are the pipeline stages snapshotted per entry, in pipeline
// order.
var StageNames = []string{"construct", "layout", "loss", "assign", "pdn"}

// Snapshot is one BENCH_*.json file.
type Snapshot struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"` // parallel entries only beat sequential with >1 core
	MILP      bool   `json:"milp"`
	// Decompose records that the MILP assignment ran cluster-decomposed
	// (cmd/bench -decompose).
	Decompose bool    `json:"decompose,omitempty"`
	Entries   []Entry `json:"entries"`
	// Cache is the stage-cache cold/warm measurement.
	Cache *CacheBench `json:"cache,omitempty"`
}

// CacheBench records one cold-vs-warm stage-cache sweep: the same workload
// run twice against one shared cache. The warm pass should be markedly
// faster, and the hit counters nonzero — that is the memoization working.
type CacheBench struct {
	// ColdNs is the wall-clock of the first pass (empty cache; within the
	// pass, workload variants already reuse each other's upstream stages).
	ColdNs int64 `json:"cold_ns"`
	// WarmNs is the wall-clock of the identical second pass (every stage
	// served from the cache).
	WarmNs int64 `json:"warm_ns"`
	// Hits and Misses are the cache's cumulative counters after both passes.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// HitRate is hits/(hits+misses) over both passes; zero when the
	// producer predates the field or nothing was looked up.
	HitRate float64 `json:"hit_rate,omitempty"`
}

// Load reads one BENCH_*.json file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// Write serialises the snapshot to path, indented, refusing to overwrite
// unless force is set.
func (s *Snapshot) Write(path string, force bool) error {
	if !force {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("%s already exists; pass -force to overwrite or -tag to pick another name", path)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
