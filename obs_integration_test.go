package sring

// Integration tests for the telemetry Recorder (internal/obs) as wired
// through the public Synthesize entry point, plus the dispatcher-level
// SynthesisTime guarantee.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// SynthesisTime is set by the Synthesize dispatcher for every method, not
// by the per-method front-ends.
func TestSynthesisTimeAllMethods(t *testing.T) {
	app := MWD()
	for _, m := range Methods() {
		d, err := Synthesize(app, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if d.SynthesisTime <= 0 {
			t.Errorf("%s: SynthesisTime = %v, want > 0", m, d.SynthesisTime)
		}
	}
}

func TestRecorderTraceSRingMILP(t *testing.T) {
	rec := NewRecorder()
	if _, err := Synthesize(MWD(), MethodSRing, Options{UseMILP: true, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	tr := rec.Snapshot()

	for _, name := range []string{
		"synthesize", "cluster.synthesize", "cluster.bound",
		"design.layout", "design.loss", "wavelength.assign",
		"wavelength.heuristic", "wavelength.milp", "milp.solve", "design.pdn",
	} {
		s := tr.Find(name)
		if s == nil {
			t.Fatalf("trace is missing span %q", name)
		}
		if s.Open {
			t.Errorf("span %q left open", name)
		}
		if s.DurNS < 0 {
			t.Errorf("span %q has negative duration %d", name, s.DurNS)
		}
	}
	root := tr.Find("synthesize")
	if got := root.Attrs["method"]; got != "SRing" {
		t.Errorf("root method attr = %v, want SRing", got)
	}

	for _, c := range []string{
		"cluster.search.iterations", "cluster.absorptions",
		"lp.solves", "lp.pivots.phase1", "milp.nodes",
	} {
		if tr.Counters[c] <= 0 {
			t.Errorf("counter %q = %d, want > 0", c, tr.Counters[c])
		}
	}

	// The JSON emission must be well-formed and carry the same structure.
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if back.Find("milp.solve") == nil {
		t.Error("decoded trace lost the milp.solve span")
	}
	if back.Counters["lp.pivots.phase1"] != tr.Counters["lp.pivots.phase1"] {
		t.Error("decoded trace lost counters")
	}

	if sum := rec.Summary(); !strings.Contains(sum, "cluster.synthesize") ||
		!strings.Contains(sum, "lp.pivots.phase1") {
		t.Errorf("summary missing expected entries:\n%s", sum)
	}
}

// Every method records at least the shared design stages under the root
// span when a Recorder is supplied.
func TestRecorderTraceAllMethods(t *testing.T) {
	app := MWD()
	for _, m := range Methods() {
		rec := NewRecorder()
		if _, err := Synthesize(app, m, Options{Recorder: rec}); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		tr := rec.Snapshot()
		for _, name := range []string{"synthesize", "design.layout", "wavelength.assign", "design.pdn"} {
			if tr.Find(name) == nil {
				t.Errorf("%s: trace is missing span %q", m, name)
			}
		}
	}
}

// The nil-Recorder instrumentation path — exactly the calls the pipeline
// makes when Options.Recorder is unset — must not allocate. This is the
// regression guard keeping telemetry free for non-observed synthesis runs.
func TestNoRecorderPathZeroAlloc(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(200, func() {
		root := rec.StartSpan("synthesize")
		root.SetString("method", "SRing")
		root.SetInt("nodes", 12)
		child := root.StartSpan("cluster.synthesize")
		child.SetFloat("d1", 0.45)
		child.SetBool("feasible", true)
		child.Event("incumbent", 1, 2)
		child.Count("milp.nodes", 1)
		c := rec.Counter("lp.pivots.phase1")
		c.Add(3)
		rec.Add("lp.solves", 1)
		_ = child.Enabled()
		_ = child.Recorder()
		child.End()
		root.End()
	})
	if allocs != 0 {
		t.Errorf("nil-Recorder telemetry path allocates %.1f per op, want 0", allocs)
	}
}
