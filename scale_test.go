package sring

import (
	"reflect"
	"testing"

	"sring/internal/netlist"
	"sring/internal/ring"
	"sring/internal/wavelength"
)

// Property tests over the large synthetic applications: the structural
// guarantees that hold on the seven paper benchmarks must survive the jump
// to 64-256 nodes, for every registered method. ClusterTrials caps SRing's
// initial-vertex search so the whole sweep stays test-budget sized; the
// cap changes solution quality only, never validity.

// scaleApps returns the scale applications under test: 64 and 128 nodes
// always, 256 when not in short mode.
func scaleApps(t *testing.T) []*Application {
	t.Helper()
	names := []string{"D64", "D128"}
	if !testing.Short() {
		names = append(names, "D256")
	}
	apps := make([]*Application, 0, len(names))
	for _, name := range names {
		app, err := Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
	}
	return apps
}

// Every method must produce a complete, conflict-free design at scale:
// one routed path per message in message order, endpoints on the path's
// ring, and a collision-free wavelength assignment.
func TestScaleAllMethodsValid(t *testing.T) {
	for _, app := range scaleApps(t) {
		for _, m := range Methods() {
			d, err := Synthesize(app, m, Options{ClusterTrials: 4, MaxChords: 8})
			if err != nil {
				t.Fatalf("%s/%s: %v", app.Name, m, err)
			}
			if len(d.Infos) != app.M() {
				t.Fatalf("%s/%s: %d paths for %d messages", app.Name, m, len(d.Infos), app.M())
			}
			rings := make(map[int]*ring.Ring, len(d.Rings))
			for _, r := range d.Rings {
				rings[r.ID] = r
			}
			for i, pi := range d.Infos {
				msg := app.Messages[i]
				if pi.Path.Msg.Src != msg.Src || pi.Path.Msg.Dst != msg.Dst {
					t.Fatalf("%s/%s: path %d routes %d->%d, message is %d->%d",
						app.Name, m, i, pi.Path.Msg.Src, pi.Path.Msg.Dst, msg.Src, msg.Dst)
				}
				r := rings[pi.Path.RingID]
				if r == nil || !r.Contains(msg.Src) || !r.Contains(msg.Dst) {
					t.Fatalf("%s/%s: message %d (%d->%d) not covered by ring %d",
						app.Name, m, i, msg.Src, msg.Dst, pi.Path.RingID)
				}
			}
			if err := wavelength.Verify(d.Infos, d.Assignment); err != nil {
				t.Errorf("%s/%s: invalid assignment: %v", app.Name, m, err)
			}
			met, err := d.Metrics()
			if err != nil {
				t.Fatalf("%s/%s: metrics: %v", app.Name, m, err)
			}
			if met.NumWavelengths <= 0 || met.TotalLaserPowerMW <= 0 {
				t.Errorf("%s/%s: implausible metrics: %+v", app.Name, m, met)
			}
		}
	}
}

// The multi-level constructor keeps the pipeline's determinism contract at
// scale: a 128-node SRing synthesis at Parallelism 4 must be bit-identical
// to the sequential run — rings (including levels), assignment, stats,
// metrics.
func TestScaleParallelBitIdentical(t *testing.T) {
	app, err := Benchmark("D128")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{ClusterTrials: 8, Parallelism: 1}
	seq, err := Synthesize(app, MethodSRing, opt)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	opt.Parallelism = 4
	par, err := Synthesize(app, MethodSRing, opt)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq.Levels != par.Levels {
		t.Errorf("hierarchy depth diverged: %d vs %d", par.Levels, seq.Levels)
	}
	fs, fp := fingerprint(t, seq), fingerprint(t, par)
	if !reflect.DeepEqual(fs, fp) {
		t.Errorf("parallel scale design diverged from sequential\n got %+v\nwant %+v", fp, fs)
	}
}

// SRing's hierarchy invariants at scale: the multi-level constructor must
// actually recurse past the paper's two-level shape at >= 128 nodes, and
// the paper's sender bound generalises per level — a node sends on at most
// one ring of each hierarchy level, hence at most Levels sender rings
// total.
func TestScaleSRingHierarchyInvariants(t *testing.T) {
	for _, app := range scaleApps(t) {
		d, err := Synthesize(app, MethodSRing, Options{ClusterTrials: 4})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		wantLevels := 2
		if app.N() >= 128 {
			wantLevels = 3
		}
		if d.Levels < wantLevels {
			t.Errorf("%s: hierarchy depth %d, want >= %d", app.Name, d.Levels, wantLevels)
		}
		level := make(map[int]int, len(d.Rings))
		for _, r := range d.Rings {
			level[r.ID] = r.Level
		}
		// node -> level -> set of rings the node sends on at that level
		senders := make(map[netlist.NodeID]map[int]map[int]bool)
		for _, pi := range d.Infos {
			n := pi.Path.Msg.Src
			l := level[pi.Path.RingID]
			if senders[n] == nil {
				senders[n] = make(map[int]map[int]bool)
			}
			if senders[n][l] == nil {
				senders[n][l] = make(map[int]bool)
			}
			senders[n][l][pi.Path.RingID] = true
		}
		for n, byLevel := range senders {
			total := 0
			for l, rs := range byLevel {
				if len(rs) > 1 {
					t.Errorf("%s: node %d sends on %d rings at level %d, want <= 1", app.Name, n, len(rs), l)
				}
				total += len(rs)
			}
			if total > d.Levels {
				t.Errorf("%s: node %d sends on %d rings, more than the %d hierarchy levels",
					app.Name, n, total, d.Levels)
			}
		}
	}
}
