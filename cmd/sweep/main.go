// Command sweep runs the extension experiments beyond the paper's
// evaluation (DESIGN.md §5, EXPERIMENTS.md "extensions"):
//
//	sweep -sensitivity   robustness of the Fig. 7 conclusion to the two
//	                     calibrated loss constants (splitter stage loss and
//	                     propagation loss): does SRing keep the lowest
//	                     power as they vary?
//	sweep -traffic       dynamic figures of merit from the packet-level
//	                     simulator: latency and laser energy per bit for
//	                     all methods on all benchmarks.
//	sweep -density       SRing-vs-CTORing power/wavelength crossover as
//	                     communication density grows.
//	sweep -crossbar      ring vs λ-router worst-case loss (paper Fig. 1).
//	sweep -scale         synthesis runtime scaling to 64-node networks,
//	                     with and without the initial-vertex cap.
//	sweep -resources     device cost (MRRs, splitters, waveguide) and
//	                     single-fault exposure per method.
//	sweep -milpgap       heuristic-vs-MILP assignment quality with the
//	                     exact solver's proven lower bounds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sring"
	"sring/internal/cli"
	"sring/internal/fault"
	"sring/internal/lambdarouter"
	"sring/internal/obs"
	"sring/internal/par"
	"sring/internal/sim"
)

// jobs is the -j worker count, used both inside each synthesis (solver and
// clustering parallelism) and to fan the benchmark × method grids out.
var jobs int

// runCtx is cancelled by ^C/SIGTERM; every synthesis call runs under it.
var runCtx = context.Background()

// cache is the shared stage cache: sweeps that revisit an application with
// only downstream parameters changed (the -sensitivity tech grid, the
// -milpgap budget) reuse the upstream construction/layout results. Nil
// when -nocache is set.
var cache *sring.Cache

// traceRec collects the span trace across every synthesis of the run when
// -trace-chrome or -telemetry is set; nil otherwise (tracing off). The
// recorder is safe for the concurrent syntheses forEachGridCell fans out.
var traceRec *sring.Recorder

func main() {
	var (
		sensitivity = flag.Bool("sensitivity", false, "loss-parameter sensitivity sweep")
		traffic     = flag.Bool("traffic", false, "packet-level latency/energy comparison")
		density     = flag.Bool("density", false, "communication-density crossover sweep")
		crossbar    = flag.Bool("crossbar", false, "ring vs crossbar (λ-router) comparison, paper Fig. 1")
		scale       = flag.Bool("scale", false, "synthesis runtime scaling beyond benchmark sizes")
		resources   = flag.Bool("resources", false, "device-cost and single-fault exposure comparison")
		milpgap     = flag.Bool("milpgap", false, "heuristic-vs-MILP assignment quality and proven bounds")
		load        = flag.Float64("load", 0.5, "offered load for -traffic")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file on exit")
		nocache     = flag.Bool("nocache", false, "disable the shared stage cache (identical tables either way)")
		chromeFile  = flag.String("trace-chrome", "", "write the run's span trace as Chrome trace-event JSON (Perfetto-loadable) to this file")
		telemetry   = flag.String("telemetry", "", "serve live telemetry (Prometheus /metrics, /debug/pprof/, /trace.json) on this address")
		teleHold    = flag.Duration("telemetry-hold", 0, "with -telemetry, keep the endpoint serving this long after the sweeps finish")
	)
	flag.IntVar(&jobs, "j", 0, "worker count (0 = all CPUs, 1 = sequential; identical results either way)")
	flag.Parse()
	if !*nocache {
		cache = sring.NewCache()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runCtx = ctx
	defer reportCache()
	if !*sensitivity && !*traffic && !*density && !*crossbar && !*scale && !*resources && !*milpgap {
		flag.Usage()
		os.Exit(2)
	}
	if *chromeFile != "" || *telemetry != "" {
		traceRec = sring.NewRecorder()
	}
	if *telemetry != "" {
		shutdown, err := cli.ServeTelemetry(ctx, os.Stderr, "sweep", *telemetry, *teleHold, traceRec.Snapshot)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}
	if *chromeFile != "" {
		defer writeChromeTrace(*chromeFile)
	}
	if *cpuProf != "" {
		stopProf, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer func() {
			if err := stopProf(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: cpu profile:", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
			}
		}()
	}
	if *sensitivity {
		runSensitivity()
	}
	if *traffic {
		runTraffic(*load)
	}
	if *density {
		runDensity()
	}
	if *crossbar {
		runCrossbar()
	}
	if *scale {
		runScale()
	}
	if *resources {
		runResources()
	}
	if *milpgap {
		runMILPGap()
	}
}

// runMILPGap reports, for every benchmark where the exact solver runs
// within the size gate, how close the splitter-aware heuristic lands to
// the MILP result and its proven lower bound (Eq. 8 objective values).
func runMILPGap() {
	fmt.Println("=== heuristic vs MILP on the Eq. 8 objective (SRing designs) ===")
	fmt.Printf("%-10s %12s %12s %12s %8s %8s\n",
		"benchmark", "heuristic", "final", "bound", "exact", "nodes")
	for _, app := range sring.Benchmarks() {
		d, err := sring.SynthesizeContext(runCtx, app, sring.MethodSRing, sring.Options{
			UseMILP: true, MILPTimeLimit: 20 * time.Second, Parallelism: jobs, Cache: cache, Recorder: traceRec,
		})
		if err != nil {
			fatal(err)
		}
		st := d.AssignStats
		if !st.MILPRan {
			fmt.Printf("%-10s %12.3f %12s %12s %8s %8s\n",
				app.Name, st.Heuristic.Value, "(skipped)", "-", "-", "-")
			continue
		}
		fmt.Printf("%-10s %12.3f %12.3f %12.3f %8v %8d\n",
			app.Name, st.Heuristic.Value, st.Final.Value, st.MILPBound,
			st.MILPExact, st.MILPNodes)
	}
}

// runResources compares the device cost (MRRs, splitters, waveguide) and
// the single-fault exposure of the four methods: the honest trade behind
// SRing's efficiency — fewer, more heavily loaded front-ends.
func runResources() {
	fmt.Println("=== device cost and single-fault exposure ===")
	fmt.Printf("%-10s %-9s %8s %8s %8s %10s %12s %12s\n",
		"benchmark", "method", "sndMRR", "rcvMRR", "split", "wg[mm]", "worst snd", "worst seg")
	forEachGridCell(func(app *sring.Application, m sring.Method) (string, error) {
		d, err := sring.SynthesizeContext(runCtx, app, m, sring.Options{Parallelism: 1, Cache: cache, Recorder: traceRec})
		if err != nil {
			return "", err
		}
		met, err := d.Metrics()
		if err != nil {
			return "", err
		}
		rep, err := fault.Analyze(d)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%-10s %-9s %8d %8d %8d %10.2f %12d %12d\n",
			app.Name, m, met.SenderMRRs, met.ReceiverMRRs, met.TotalSplitters,
			met.TotalWaveguideMM, rep.WorstSenderLoss, rep.WorstSegmentLoss), nil
	})
}

// forEachGridCell runs fn over the benchmark × method grid on the -j worker
// count — each cell runs its synthesis sequentially (Parallelism 1 inside
// fn) so the grid itself is the unit of parallelism — and prints the
// returned rows in grid order regardless of completion order.
func forEachGridCell(fn func(app *sring.Application, m sring.Method) (string, error)) {
	type cell struct {
		app *sring.Application
		m   sring.Method
	}
	var grid []cell
	for _, app := range sring.Benchmarks() {
		for _, m := range sring.Methods() {
			grid = append(grid, cell{app, m})
		}
	}
	rows := make([]string, len(grid))
	errs := make([]error, len(grid))
	par.ForEach(jobs, len(grid), func(i int) {
		rows[i], errs[i] = fn(grid[i].app, grid[i].m)
	})
	for i := range grid {
		if errs[i] != nil {
			fatal(errs[i])
		}
		fmt.Print(rows[i])
	}
}

// runScale extends Table II beyond the paper's sizes: synthesis runtime
// and solution quality for random low-density networks up to 64 nodes,
// with and without the initial-vertex cap.
func runScale() {
	fmt.Println("=== SRing synthesis scaling (random apps, density 1.5) ===")
	fmt.Printf("%-6s %-8s %14s %14s %12s\n", "#N", "trials", "runtime", "Lmax[mm]", "power[mW]")
	for _, n := range []int{16, 32, 48, 64} {
		app, err := sring.RandomApplication(n, n*3/2, 42)
		if err != nil {
			fatal(err)
		}
		for _, trials := range []int{0, 6} {
			if n > 32 && trials == 0 {
				continue // the uncapped paper algorithm is O(n^2) growths per L_max
			}
			start := time.Now()
			d, err := sring.SynthesizeContext(runCtx, app, sring.MethodSRing, sring.Options{ClusterTrials: trials, Parallelism: jobs, Recorder: traceRec})
			if err != nil {
				fatal(err)
			}
			met, err := d.Metrics()
			if err != nil {
				fatal(err)
			}
			label := "all"
			if trials > 0 {
				label = fmt.Sprintf("%d", trials)
			}
			fmt.Printf("%-6d %-8s %14s %14.2f %12.4f\n",
				n, label, time.Since(start).Round(time.Millisecond),
				met.LongestPathMM, met.TotalLaserPowerMW)
		}
	}
}

// runCrossbar quantifies the paper's Fig. 1 motivation: crossbar
// (λ-router) designs pay OSE and crossing losses that grow with the port
// count, while ring routers avoid them.
func runCrossbar() {
	fmt.Println("=== ring vs crossbar (λ-router), paper Fig. 1 ===")
	fmt.Printf("%-10s %14s %14s %14s %10s\n",
		"benchmark", "xbar il_w[dB]", "ring il_w[dB]", "SRing il_w[dB]", "xbar OSEs")
	tech := sring.DefaultTech()
	for _, app := range sring.Benchmarks() {
		xb, err := lambdarouter.Synthesize(app, 0.1)
		if err != nil {
			fatal(err)
		}
		mx, err := xb.Evaluate(tech)
		if err != nil {
			fatal(err)
		}
		ct, err := sring.SynthesizeContext(runCtx, app, sring.MethodCTORing, sring.Options{Parallelism: jobs, Cache: cache, Recorder: traceRec})
		if err != nil {
			fatal(err)
		}
		mc, err := ct.Metrics()
		if err != nil {
			fatal(err)
		}
		sr, err := sring.SynthesizeContext(runCtx, app, sring.MethodSRing, sring.Options{Parallelism: jobs, Cache: cache, Recorder: traceRec})
		if err != nil {
			fatal(err)
		}
		ms, err := sr.Metrics()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-10s %14.2f %14.2f %14.2f %10d\n",
			app.Name, mx.WorstILdB, mc.WorstILdB, ms.WorstILdB, mx.TotalOSEs)
	}
}

// runDensity sweeps communication density on a fixed 12-node placement and
// tracks SRing's power and wavelength usage against CTORing's — the paper's
// Sec. IV-A "wavelength usage depends on the communication density"
// narrative as a generated curve.
func runDensity() {
	fmt.Println("=== density sweep: 12 nodes, growing message count (seed 3) ===")
	fmt.Printf("%-8s %-8s %14s %14s %10s %10s\n",
		"#M", "density", "SRing P[mW]", "CTORing P[mW]", "SRing #wl", "CTOR #wl")
	for _, m := range []int{12, 18, 24, 36, 48, 72, 96} {
		app, err := sring.RandomApplication(12, m, 3)
		if err != nil {
			fatal(err)
		}
		sr, err := sring.SynthesizeContext(runCtx, app, sring.MethodSRing, sring.Options{Parallelism: jobs, Cache: cache, Recorder: traceRec})
		if err != nil {
			fatal(err)
		}
		ct, err := sring.SynthesizeContext(runCtx, app, sring.MethodCTORing, sring.Options{Parallelism: jobs, Cache: cache, Recorder: traceRec})
		if err != nil {
			fatal(err)
		}
		ms, err := sr.Metrics()
		if err != nil {
			fatal(err)
		}
		mc, err := ct.Metrics()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8d %-8.1f %14.4f %14.4f %10d %10d\n",
			m, app.Density(), ms.TotalLaserPowerMW, mc.TotalLaserPowerMW,
			ms.NumWavelengths, mc.NumWavelengths)
	}
}

// runSensitivity sweeps the two calibrated constants and reports, per
// setting, on how many of the seven benchmarks SRing has the lowest total
// laser power.
func runSensitivity() {
	fmt.Println("=== sensitivity: benchmarks where SRing has the lowest laser power ===")
	fmt.Printf("%-28s %-10s %s\n", "parameter setting", "wins", "of 7 benchmarks")

	type setting struct {
		name string
		tech sring.Tech
	}
	var settings []setting
	for _, split := range []float64{2.0, 3.0, 4.0} {
		tech := sring.DefaultTech()
		tech.SplitRatioDB = split
		settings = append(settings, setting{fmt.Sprintf("split ratio %.1f dB", split), tech})
	}
	for _, prop := range []float64{0.0274, 0.1, 0.274, 0.5} {
		tech := sring.DefaultTech()
		tech.PropagationDBPerMM = prop
		settings = append(settings, setting{fmt.Sprintf("propagation %.4f dB/mm", prop), tech})
	}

	for _, s := range settings {
		wins := 0
		total := 0
		for _, app := range sring.Benchmarks() {
			res, err := sring.EvaluateContext(runCtx, app, sring.Options{Tech: s.tech, Parallelism: jobs, Cache: cache, Recorder: traceRec})
			if err != nil {
				fatal(err)
			}
			total++
			best := true
			for _, m := range sring.Methods() {
				if m != sring.MethodSRing &&
					res[m].TotalLaserPowerMW < res[sring.MethodSRing].TotalLaserPowerMW {
					best = false
				}
			}
			if best {
				wins++
			}
		}
		fmt.Printf("%-28s %-10d %d\n", s.name, wins, total)
	}
}

// runTraffic simulates packet traffic on every design and prints latency
// and energy per bit.
func runTraffic(load float64) {
	fmt.Printf("=== packet-level comparison (load %.2f, 10 Gb/s per λ, 1 µs) ===\n", load)
	fmt.Printf("%-10s %-9s %10s %12s %12s %12s\n",
		"benchmark", "method", "packets", "avg lat[ns]", "thrpt[Gb/s]", "pJ/bit")
	forEachGridCell(func(app *sring.Application, m sring.Method) (string, error) {
		d, err := sring.SynthesizeContext(runCtx, app, m, sring.Options{Parallelism: 1, Cache: cache, Recorder: traceRec})
		if err != nil {
			return "", err
		}
		res, err := sim.Run(d, sim.Config{Seed: 7, Load: load})
		if err != nil {
			return "", err
		}
		if res.Collisions != 0 {
			return "", fmt.Errorf("%s/%s: %d collisions in a valid design", app.Name, m, res.Collisions)
		}
		return fmt.Sprintf("%-10s %-9s %10d %12.2f %12.2f %12.5f\n",
			app.Name, m, res.PacketsDelivered, res.AvgLatencyNS,
			res.ThroughputGbps, res.LaserEnergyPJPerBit), nil
	})
}

// writeChromeTrace dumps the accumulated span trace in Chrome trace-event
// JSON for Perfetto.
func writeChromeTrace(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return
	}
	if err := traceRec.WriteChromeTrace(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "sweep: chrome trace written to %s (load at ui.perfetto.dev)\n", path)
}

// reportCache prints the shared cache's hit/miss totals to stderr (tables
// on stdout stay byte-identical with and without the cache).
func reportCache() {
	if cache == nil {
		return
	}
	hits, misses := cache.Stats()
	fmt.Fprintf(os.Stderr, "sweep: stage cache: %d hits, %d misses, %d entries\n", hits, misses, cache.Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
