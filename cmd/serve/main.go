// Command serve runs the synthesis daemon: an HTTP/JSON service that
// executes synthesis requests for any registered method on the shared
// staged pipeline, memoizing stage outputs in a byte-budgeted,
// disk-persistable cache so repeated and near-identical requests (option
// sweeps over one application) are served in microseconds.
//
//	serve -addr :8080
//	serve -cache-bytes 268435456 -cache-dir /var/cache/sring
//	serve -max-j 4 -telemetry :9090
//
// Endpoints (see internal/serve):
//
//	POST /synthesize   {"app":"MWD","method":"SRing","options":{...}}
//	                   add "stream":true for NDJSON per-stage progress
//	GET  /methods      registered methods and builtin applications
//	GET  /stats.json   cache statistics
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      liveness
//
// -cache-dir makes warm state survive restarts: entries are written behind
// the request path and reloaded on boot. -telemetry serves the full
// observability endpoint (pprof, trace) on a second address, as in the
// other commands. On SIGINT/SIGTERM the daemon drains in-flight requests,
// flushes the cache to disk, and prints the cache summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	_ "sring" // register the synthesis methods

	"sring/internal/cli"
	"sring/internal/obs"
	"sring/internal/serve"
)

func main() {
	var cacheFlags cli.CacheFlags
	var (
		addr      = flag.String("addr", ":8080", "address to serve synthesis requests on")
		maxJ      = flag.Int("max-j", 0, "cap per-request Parallelism (0 = allow all CPUs)")
		maxInflt  = flag.Int("max-inflight", 2*runtime.GOMAXPROCS(0), "cap concurrently running synthesis requests; excess get 429 + Retry-After (negative = unlimited)")
		telemetry = flag.String("telemetry", "", "serve live telemetry (Prometheus /metrics, /debug/pprof/) on this second address")
		teleHold  = flag.Duration("telemetry-hold", 0, "with -telemetry, keep the endpoint serving this long after shutdown")
	)
	cacheFlags.Register(flag.CommandLine, 256<<20)
	flag.Parse()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cache, err := cacheFlags.Open()
	if err != nil {
		fatal(err)
	}
	if st := cache.StatsSnapshot(); st.Entries > 0 {
		fmt.Fprintf(os.Stderr, "serve: reloaded %d cached entries (%d bytes) from %s\n", st.Entries, st.Bytes, cacheFlags.Dir)
	}

	if *telemetry != "" {
		shutdown, err := cli.ServeTelemetry(ctx, os.Stderr, "serve", *telemetry, *teleHold, nil)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}

	srv := &serve.Server{
		Cache:          cache,
		Registry:       obs.Default(),
		MaxParallelism: *maxJ,
		MaxInflight:    *maxInflt,
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "serve: listening on %s (POST /synthesize)\n", *addr)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "serve: drain: %v\n", err)
		}
		cancel()
	}
	if err := cache.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "serve: cache close: %v\n", err)
	}
	cli.FprintCacheStats(os.Stderr, "serve", cache.StatsSnapshot())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
