// Command sring synthesises an application-specific WRONoC ring router and
// prints the resulting design and its optical power metrics.
//
// Usage:
//
//	sring -bench MWD -method SRing [-milp] [-v]
//	sring -bench D128 -method SRing -cluster-trials 8 -milp -decompose
//	sring -app design.json -method CTORing
//	sring -list
//
// The application can be any builtin from the netlist registry (-bench:
// the seven paper benchmarks, the extended task graphs, and the synthetic
// scale apps up to 512 nodes — see -list) or a JSON file (-app) with the
// schema {"name": ..., "nodes": [{"name", "x", "y"}...],
// "messages": [{"src", "dst", "bandwidth"}...]}.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sring"
	"sring/internal/cli"
	"sring/internal/crosstalk"
	"sring/internal/design"
	"sring/internal/floorplan"
	"sring/internal/netlist"
	"sring/internal/render"
	"sring/internal/sim"
)

func main() {
	var (
		benchName  = flag.String("bench", "", "builtin application name from the netlist registry (see -list)")
		listApps   = flag.Bool("list", false, "list the registered builtin applications and exit")
		appFile    = flag.String("app", "", "JSON application file (alternative to -bench)")
		methodName = flag.String("method", "SRing", "synthesis method: SRing, ORNoC, CTORing, XRing")
		useMILP    = flag.Bool("milp", false, "enable the exact MILP wavelength assignment")
		decompose  = flag.Bool("decompose", false, "with -milp, run the cluster-decomposed exact assignment")
		milpLimit  = flag.Duration("milp-timeout", sring.DefaultMILPTimeLimit, "MILP time limit")
		oracle     = flag.String("oracle", "", `with -milp, independent cross-check solver to run when the MILP cannot prove optimality ("cp": constraint-propagation search)`)
		cutRounds  = flag.Int("cut-rounds", 0, "with -milp, cutting-plane rounds per fractional node (0: solver default, negative: disable cuts)")
		jobs       = flag.Int("j", 0, "synthesis worker count (0 = all CPUs, 1 = sequential; same design either way)")
		treeHeight = flag.Int("tree-height", 0, "SRing L_max search tree height h (0 = default 6)")
		trials     = flag.Int("cluster-trials", 0, "cap SRing's initial clustering trials (0 = unlimited, the paper's behaviour)")
		verbose    = flag.Bool("v", false, "print rings and per-path detail")
		svgFile    = flag.String("svg", "", "write the layout as SVG to this file")
		jsonFile   = flag.String("json", "", "write the full design (structure, assignment, metrics) as JSON to this file")
		autoplace  = flag.Bool("autoplace", false, "place nodes by simulated annealing, ignoring the input's coordinates")
		runSim     = flag.Bool("sim", false, "run the packet-level transmission simulation")
		runXtalk   = flag.Bool("crosstalk", false, "run the worst-case crosstalk/SNR analysis")
		traceFile  = flag.String("trace", "", "write the synthesis telemetry trace as JSON to this file")
		chromeFile = flag.String("trace-chrome", "", "write the trace as Chrome trace-event JSON (Perfetto-loadable) to this file")
		timing     = flag.Bool("timing", false, "print the per-stage timing/counter summary tree")
		telemetry  = flag.String("telemetry", "", "serve live telemetry (Prometheus /metrics, /debug/pprof/, /trace.json) on this address, e.g. localhost:6060")
		teleHold   = flag.Duration("telemetry-hold", 0, "with -telemetry, keep the endpoint serving this long after synthesis finishes")
	)
	flag.Parse()

	if *listApps {
		for _, name := range netlist.Names() {
			fmt.Println(name)
		}
		return
	}
	app, err := loadApp(*benchName, *appFile, *autoplace)
	if err != nil {
		fatal(err)
	}
	if *autoplace {
		app, err = floorplan.Place(app, floorplan.Options{Seed: 1})
		if err != nil {
			fatal(err)
		}
	}
	var rec *sring.Recorder
	if *traceFile != "" || *chromeFile != "" || *timing || *telemetry != "" {
		rec = sring.NewRecorder()
	}
	// ^C cancels the synthesis gracefully: the engine returns its best
	// feasible design flagged Cancelled instead of dying mid-solve.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *telemetry != "" {
		shutdown, err := cli.ServeTelemetry(ctx, os.Stderr, "sring", *telemetry, *teleHold, rec.Snapshot)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}
	d, err := sring.SynthesizeContext(ctx, app, sring.Method(*methodName), sring.Options{
		UseMILP:         *useMILP,
		DecomposeAssign: *decompose,
		MILPTimeLimit:   *milpLimit,
		Oracle:          *oracle,
		CutRounds:       *cutRounds,
		TreeHeight:      *treeHeight,
		ClusterTrials:   *trials,
		Parallelism:     *jobs,
		Recorder:        rec,
	})
	if err != nil {
		fatal(err)
	}
	if d.Cancelled {
		fmt.Fprintln(os.Stderr, "sring: interrupted — reporting the best design found so far")
	}
	if st := d.AssignStats; st != nil && st.OracleRan {
		fmt.Fprintf(os.Stderr, "sring: CP oracle ran (%d nodes, exact=%v, bound %.4f dB)\n",
			st.OracleNodes, st.OracleExact, st.OracleBound)
	}
	m, err := d.Metrics()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s router for %s (synthesised in %s)\n\n", d.Method, app, d.SynthesisTime.Round(time.Millisecond))
	fmt.Printf("  longest signal path L        %8.3f mm\n", m.LongestPathMM)
	fmt.Printf("  worst-case IL (il_w)         %8.3f dB\n", m.WorstILdB)
	fmt.Printf("  max splitters passed (#sp_w) %8d\n", m.MaxSplitters)
	fmt.Printf("  worst-case IL (il_w_all)     %8.3f dB\n", m.WorstILAlldB)
	fmt.Printf("  wavelengths (#wl)            %8d\n", m.NumWavelengths)
	fmt.Printf("  total laser power            %8.4f mW\n", m.TotalLaserPowerMW)
	fmt.Printf("  rings / node splitters       %8d / %d\n", m.NumRings, m.NodeSplitters)
	fmt.Printf("  layout: %d crossings, %d bends, %.2f mm waveguide\n",
		m.TotalCrossings, m.TotalBends, m.TotalWaveguideMM)

	if *verbose {
		fmt.Println("\nrings:")
		for _, r := range d.Rings {
			fmt.Printf("  %s\n", r)
		}
		fmt.Println("\npaths:")
		for i, pi := range d.Infos {
			fmt.Printf("  msg %2d: %2d -> %-2d  ring %d  λ%-2d  %.3f mm  L_s %.3f dB\n",
				i, pi.Path.Msg.Src, pi.Path.Msg.Dst, pi.Path.RingID,
				d.Assignment.Lambda[i], pi.Path.Length, pi.LossDB)
		}
	}

	if *runSim {
		res, err := sim.Run(d, sim.Config{Seed: 1})
		if err != nil {
			fatal(err)
		}
		fmt.Println("\ntransmission simulation (1 µs, load 0.5, 10 Gb/s per λ):")
		fmt.Printf("  packets delivered   %d (collisions: %d)\n", res.PacketsDelivered, res.Collisions)
		fmt.Printf("  avg / worst latency %.3f / %.3f ns\n", res.AvgLatencyNS, res.WorstLatencyNS)
		fmt.Printf("  throughput          %.2f Gb/s\n", res.ThroughputGbps)
		fmt.Printf("  laser energy        %.4f pJ/bit\n", res.LaserEnergyPJPerBit)
	}

	if *runXtalk {
		rep, err := crosstalk.Analyze(d, crosstalk.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nworst-case crosstalk analysis (25 dB drop suppression):")
		fmt.Printf("  worst-case SNR      %.2f dB\n", rep.WorstSNRdB)
		fmt.Printf("  aggressor pairs     %d\n", rep.TotalAggressorPairs)
	}

	if *svgFile != "" {
		f, err := os.Create(*svgFile)
		if err != nil {
			fatal(err)
		}
		if err := render.SVG(f, d); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nlayout written to %s\n", *svgFile)
	}

	if *jsonFile != "" {
		f, err := os.Create(*jsonFile)
		if err != nil {
			fatal(err)
		}
		if err := design.EncodeJSON(f, d); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("design written to %s\n", *jsonFile)
	}

	if *timing {
		fmt.Println("\nsynthesis timing:")
		fmt.Print(rec.Summary())
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceFile)
	}
	if *chromeFile != "" {
		f, err := os.Create(*chromeFile)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace written to %s (load at ui.perfetto.dev)\n", *chromeFile)
	}
}

func loadApp(benchName, appFile string, raw bool) (*sring.Application, error) {
	switch {
	case benchName != "" && appFile != "":
		return nil, fmt.Errorf("use either -bench or -app, not both")
	case benchName != "":
		return sring.Benchmark(benchName)
	case appFile != "":
		f, err := os.Open(appFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if raw {
			// Placement comes from -autoplace; skip coordinate checks.
			return netlist.DecodeRaw(f)
		}
		return netlist.Decode(f)
	default:
		return nil, fmt.Errorf("specify -bench <name> or -app <file.json>")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sring:", err)
	os.Exit(1)
}
