// Command loadgen replays a mixed synthesis workload against a running
// serve daemon and snapshots the serving profile in the same dated
// BENCH_*.json format cmd/bench writes, so `bench -compare` gates serving
// regressions exactly like synthesis ones.
//
//	loadgen -url http://127.0.0.1:8080
//	loadgen -url ... -j 8 -repeat 5 -tag serve
//	loadgen -url ... -mix mix.json -o BENCH_serve.json
//
// The workload runs twice — a cold pass and an identical warm pass — at
// the configured concurrency. Per request name ("Serve/<app>/<method>")
// the warm pass's mean and p50/p99 latency become snapshot entries (the
// request distribution rides in stage_ns under "request"); the cold/warm
// wall-clocks and the server-side cache hit-rate delta land in the
// snapshot's cache section. The cold:warm p50 ratio printed at the end is
// the serving cache's headline number.
//
// -mix replays a custom workload: a JSON array of serve request objects
// ({"app":...,"method":...,"options":{...}}), instead of the default mix
// (every builtin application under SRing plus the baseline methods on the
// two small ones).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sring/internal/benchfmt"
	"sring/internal/serve"
)

func main() {
	var (
		url    = flag.String("url", "", "base URL of the serve daemon (required), e.g. http://127.0.0.1:8080")
		jobs   = flag.Int("j", 4, "concurrent in-flight requests")
		repeat = flag.Int("repeat", 3, "times each mix element is replayed per pass")
		mixP   = flag.String("mix", "", "JSON file with the request mix (default: builtin benchmark mix)")
		out    = flag.String("o", "", "output file (default BENCH_<yyyy-mm-dd>[-<tag>].json)")
		tag    = flag.String("tag", "", "suffix for the default output name")
		force  = flag.Bool("force", false, "overwrite an existing snapshot file")
	)
	flag.Parse()
	if *url == "" {
		fatal(fmt.Errorf("-url is required"))
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	mix := serve.DefaultMix()
	if *mixP != "" {
		data, err := os.ReadFile(*mixP)
		if err != nil {
			fatal(err)
		}
		mix = nil
		if err := json.Unmarshal(data, &mix); err != nil {
			fatal(fmt.Errorf("%s: %w", *mixP, err))
		}
	}

	res, err := serve.Replay(ctx, serve.ReplayConfig{
		BaseURL:     *url,
		Concurrency: *jobs,
		Repeat:      *repeat,
		Mix:         mix,
	})
	if err != nil {
		fatal(err)
	}

	for _, s := range res.Warm {
		line := fmt.Sprintf("%-32s %6d reqs %12.0f ns/op   p50 %-10s p99 %-10s synth p50 %s",
			s.Name, s.Count, s.MeanNs,
			time.Duration(s.P50Ns).Round(time.Microsecond),
			time.Duration(s.P99Ns).Round(time.Microsecond),
			time.Duration(s.SynthP50Ns).Round(time.Microsecond))
		if s.Errors > 0 {
			line += fmt.Sprintf("   %d non-2xx", s.Errors)
		}
		fmt.Println(line)
	}
	if n := res.TotalErrors(); n > 0 {
		fmt.Printf("%-32s %d non-2xx responses across both passes, excluded from all latency numbers\n",
			"Replay/errors", n)
	}
	coldP50, warmP50 := res.ColdP50(), res.WarmP50()
	ratio := 0.0
	if warmP50 > 0 {
		ratio = float64(coldP50) / float64(warmP50)
	}
	fmt.Printf("%-32s cold %-12s warm %-12s synth p50 cold/warm %.0fx   hit rate %.1f%% (%d hits / %d misses)\n",
		"Replay/overall",
		time.Duration(res.ColdWallNs).Round(time.Millisecond),
		time.Duration(res.WarmWallNs).Round(time.Millisecond),
		ratio, 100*res.HitRate, res.Hits, res.Misses)

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		if *tag != "" {
			path = fmt.Sprintf("BENCH_%s-%s.json", date, *tag)
		} else {
			path = fmt.Sprintf("BENCH_%s.json", date)
		}
	}
	snap := &benchfmt.Snapshot{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Entries:   res.Entries(*jobs),
		Cache:     res.CacheBench(),
	}
	if err := snap.Write(path, *force); err != nil {
		fatal(err)
	}
	fmt.Printf("snapshot written to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
