// Command experiments regenerates every table and figure of the SRing
// paper's evaluation (Sec. IV):
//
//	experiments -table1     Table I  (4 methods x 7 benchmarks)
//	experiments -table2     Table II (SRing runtimes)
//	experiments -fig7       Fig. 7   (total laser power + #wl)
//	experiments -fig8       Fig. 8   (random-solution histograms, MWD/VOPD)
//	experiments -all        everything
//
// Add -milp to enable the exact MILP wavelength assignment (slower), -csv
// to emit machine-readable rows, and -samples N to change the Fig. 8
// sample count (paper: 100000).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sring"
	"sring/internal/cli"
	"sring/internal/obs"
	"sring/internal/par"
	"sring/internal/randsol"
	"sring/internal/report"
	"sring/internal/ring"
)

// runCtx is cancelled by ^C/SIGTERM; every synthesis call runs under it.
var runCtx = context.Background()

func main() {
	var (
		table1   = flag.Bool("table1", false, "regenerate Table I")
		table2   = flag.Bool("table2", false, "regenerate Table II")
		fig7     = flag.Bool("fig7", false, "regenerate Fig. 7")
		fig8     = flag.Bool("fig8", false, "regenerate Fig. 8")
		all      = flag.Bool("all", false, "regenerate everything")
		useMILP  = flag.Bool("milp", false, "enable the exact MILP wavelength assignment")
		csv      = flag.Bool("csv", false, "emit CSV instead of formatted tables (Table I / Fig. 7 data)")
		samples  = flag.Int("samples", 100000, "random samples for Fig. 8")
		seed     = flag.Int64("seed", 2025, "random seed for Fig. 8")
		extended = flag.Bool("extended", false, "also evaluate the extension benchmarks (PIP, H263, MP3, MMS)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		teleAddr = flag.String("telemetry", "", "serve live telemetry (Prometheus /metrics, /debug/pprof/) on this address")
		teleHold = flag.Duration("telemetry-hold", 0, "with -telemetry, keep the endpoint serving this long after the tables finish")
		jobs     = flag.Int("j", 0, "benchmark-grid worker count (0 = all CPUs, 1 = sequential; tables are identical either way, but Table II runtimes reflect the concurrent run)")
	)
	flag.Parse()
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	runCtx = ctx
	if *teleAddr != "" {
		shutdown, err := cli.ServeTelemetry(ctx, os.Stderr, "experiments", *teleAddr, *teleHold, nil)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}
	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: cpu profile:", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	if *all {
		*table1, *table2, *fig7, *fig8 = true, true, true, true
	}
	if !*table1 && !*table2 && !*fig7 && !*fig8 {
		flag.Usage()
		os.Exit(2)
	}

	// Each synthesis runs sequentially (Parallelism 1): the benchmark ×
	// method grid below is the unit of -j parallelism, and the results are
	// identical to the sequential run by the pipeline's determinism
	// guarantee.
	opt := sring.Options{UseMILP: *useMILP, Parallelism: 1}

	var rows []report.Row
	runtimes := make(map[string]time.Duration)
	stages := make(map[string]report.StageTiming)
	var benchOrder []string
	apps := sring.Benchmarks()
	if *extended {
		apps = append(apps, sring.ExtendedBenchmarks()...)
	}
	if *table1 || *fig7 || *table2 {
		type cell struct {
			app *sring.Application
			m   sring.Method
		}
		var grid []cell
		for _, app := range apps {
			benchOrder = append(benchOrder, app.Name)
			for _, m := range sring.Methods() {
				grid = append(grid, cell{app, m})
			}
		}
		type cellResult struct {
			row      report.Row
			runtime  time.Duration
			stage    report.StageTiming
			hasStage bool
			err      error
		}
		results := make([]cellResult, len(grid))
		par.ForEach(*jobs, len(grid), func(i int) {
			app, m := grid[i].app, grid[i].m
			out := &results[i]
			mopt := opt
			var rec *sring.Recorder
			if *table2 && m == sring.MethodSRing {
				rec = sring.NewRecorder()
				mopt.Recorder = rec
			}
			d, err := sring.SynthesizeContext(runCtx, app, m, mopt)
			if err != nil {
				out.err = err
				return
			}
			if rec != nil {
				t := rec.Snapshot()
				out.stage = report.StageTiming{
					Total:   d.SynthesisTime,
					Cluster: t.SumDuration("cluster.synthesize"),
					Layout:  t.SumDuration("design.layout"),
					Assign:  t.SumDuration("wavelength.assign"),
					MILP:    t.SumDuration("wavelength.milp"),
					PDN:     t.SumDuration("design.pdn"),
				}
				out.hasStage = true
			}
			met, err := d.Metrics()
			if err != nil {
				out.err = err
				return
			}
			out.row = report.Row{
				Benchmark:         app.Name,
				Method:            string(m),
				LongestPathMM:     met.LongestPathMM,
				WorstILdB:         met.WorstILdB,
				MaxSplitters:      met.MaxSplitters,
				WorstILAlldB:      met.WorstILAlldB,
				NumWavelengths:    met.NumWavelengths,
				TotalLaserPowerMW: met.TotalLaserPowerMW,
			}
			if m == sring.MethodSRing {
				out.runtime = d.SynthesisTime
			}
		})
		for i, r := range results {
			if r.err != nil {
				fatal(r.err)
			}
			rows = append(rows, r.row)
			if r.hasStage {
				stages[grid[i].app.Name] = r.stage
			}
			if grid[i].m == sring.MethodSRing {
				runtimes[grid[i].app.Name] = r.runtime
			}
		}
	}

	if *table1 {
		fmt.Println("=== Table I: comparison of ORNoC, CTORing, XRing and SRing ===")
		if *csv {
			fmt.Print(report.CSV(rows))
		} else {
			fmt.Print(report.Table1(rows))
		}
		fmt.Println()
	}
	if *fig7 {
		fmt.Println("=== Fig. 7: total laser power and wavelength usage ===")
		if *csv {
			fmt.Print(report.CSV(rows))
		} else {
			fmt.Print(report.Fig7(rows))
		}
		fmt.Println()
	}
	if *table2 {
		fmt.Println("=== Table II: program runtime of SRing [s] ===")
		fmt.Print(report.Table2(runtimes, benchOrder))
		fmt.Println()
		fmt.Println("per-stage breakdown (from telemetry):")
		fmt.Print(report.Table2Stages(stages, benchOrder))
		fmt.Println()
	}
	if *fig8 {
		runFig8(opt, *samples, *seed)
	}
}

// runFig8 reproduces the solution-quality study: random clustering +
// sequential sub-rings + random wavelength assignment, histogrammed against
// SRing's solution for MWD (and the feasibility count for VOPD).
func runFig8(opt sring.Options, samples int, seed int64) {
	fmt.Printf("=== Fig. 8: %d random solutions vs SRing ===\n", samples)
	tech := sring.DefaultTech()
	for _, name := range []string{"MWD", "VOPD"} {
		app, err := sring.Benchmark(name)
		if err != nil {
			fatal(err)
		}
		st, err := randsol.Run(app, tech, seed, samples)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s: %d / %d feasible (%.2f%%)\n", name, st.Feasible, st.Total, 100*st.FeasibleRate())
		if name != "MWD" {
			continue // the paper histograms MWD only
		}
		d, err := sring.SynthesizeContext(runCtx, app, sring.MethodSRing, opt)
		if err != nil {
			fatal(err)
		}
		m, err := d.Metrics()
		if err != nil {
			fatal(err)
		}
		paths := make([]ring.Path, len(d.Infos))
		for i, pi := range d.Infos {
			paths[i] = pi.Path
		}
		sringIL := randsol.ReducedWorstIL(app, tech, d.Rings, paths)
		fmt.Println()
		fmt.Print(report.Histogram("(a) #wl for MWD", report.IntHistogramValues(st.WavelengthCounts), float64(m.NumWavelengths), 10))
		fmt.Println()
		fmt.Print(report.Histogram("(b) il_w for MWD [dB]", st.WorstILs, sringIL, 10))
		fmt.Println()
		fmt.Print(report.Summary("#wl", float64(m.NumWavelengths), report.IntHistogramValues(st.WavelengthCounts)))
		fmt.Print(report.Summary("il_w", sringIL, st.WorstILs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
