// Command bench snapshots the repository's headline benchmark timings to a
// dated JSON file, so performance can be compared across commits without
// re-parsing `go test -bench` output:
//
//	bench               writes BENCH_<yyyy-mm-dd>.json (SRing on all benchmarks)
//	bench -full         also times the three baseline methods
//	bench -o file.json  writes to an explicit path
//	bench -tag pr123    writes BENCH_<yyyy-mm-dd>-pr123.json
//	bench -force        overwrites an existing snapshot (refused otherwise)
//	bench -milp         enables the exact MILP assignment during timing
//	bench -milp-timeout 2s
//	                    bounds each exact solve (the decomposed sweep runs
//	                    several per synthesis)
//	bench -decompose    with -milp, runs the cluster-decomposed assignment
//	bench -apps D64,D128
//	                    benchmarks the named registry apps instead of the
//	                    seven paper benchmarks
//	bench -cluster-trials 8
//	                    caps SRing's initial clustering trials (0 =
//	                    unlimited, the paper's behaviour) — the knob that
//	                    keeps the 128-node apps inside a CI smoke budget
//	bench -j 1,4        times each pair at several Parallelism settings
//
//	bench -compare old.json new.json
//	                    prints a benchstat-style delta table (ns/op,
//	                    allocs/op, stage p99, milp_gap) over the entries the
//	                    snapshots share and exits non-zero when any entry
//	                    regressed more than -threshold (default 20%); see
//	                    compare.go
//
// Observability: -telemetry addr serves live /metrics and /debug/pprof/
// while the benchmarks run, and -trace-chrome file.json runs one traced
// SRing pass after the timings and writes it as Perfetto-loadable Chrome
// trace-event JSON. Each entry additionally records the p50/p99 of the
// five pipeline stages (stage_ns), which -compare gates on.
//
// Each entry carries ns/op plus the allocation counts from the Go
// benchmark harness (testing.Benchmark), one entry per method/benchmark
// pair, named like "Synthesize/MWD/SRing" — or, with more than one -j
// value, per parallelism setting, like "Synthesize/MWD/SRing/j=4". With
// -milp, entries also record the solver's relative optimality gap
// (milp_gap, 0 = proven optimal) and whether the wall-clock budget cut
// the search off (time_limit_hit).
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"sring"
	"sring/internal/benchfmt"
	"sring/internal/cli"
)

// benchResult condenses a testing.BenchmarkResult plus any synthesis error.
type benchResult struct {
	nsPerOp     float64
	allocsPerOp int64
	bytesPerOp  int64
	n           int
	err         error
}

// testingBenchmark times fn with the standard benchmark harness (adaptive
// iteration counts, allocation accounting).
func testingBenchmark(fn func() error) benchResult {
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				runErr = err
				b.SkipNow()
			}
		}
	})
	if runErr != nil {
		return benchResult{err: runErr}
	}
	return benchResult{
		nsPerOp:     float64(r.NsPerOp()),
		allocsPerOp: r.AllocsPerOp(),
		bytesPerOp:  r.AllocedBytesPerOp(),
		n:           r.N,
	}
}

// The snapshot schema lives in internal/benchfmt, shared with cmd/loadgen;
// the local names are kept as aliases so this package reads like before.
type (
	entry      = benchfmt.Entry
	stagePct   = benchfmt.StagePct
	snapshot   = benchfmt.Snapshot
	cacheBench = benchfmt.CacheBench
)

// stageNames are the pipeline stages whose registry histograms bench
// snapshots per entry, in pipeline order.
var stageNames = benchfmt.StageNames

// stagePercentiles extracts the per-stage p50/p99 from a bracketed registry
// delta; nil when no stage recorded (a cancelled run).
func stagePercentiles(d *sring.RegistrySnap) map[string]stagePct {
	out := make(map[string]stagePct, len(stageNames))
	for _, s := range stageNames {
		h := d.Histograms["pipeline.stage."+s+".ns"]
		if h == nil || h.Count == 0 {
			continue
		}
		out[s] = stagePct{P50: h.P50, P99: h.P99}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// counterPrefixes selects which registry counters a bench entry snapshots:
// the branch-and-cut internals that explain a gap or node-count shift.
var counterPrefixes = []string{"milp.cuts.", "lp.rows."}

// solverCounters extracts the selected counter deltas; nil when none fired
// (a run without the MILP).
func solverCounters(d *sring.RegistrySnap) map[string]int64 {
	var out map[string]int64
	for name, v := range d.Counters {
		if v == 0 {
			continue
		}
		for _, p := range counterPrefixes {
			if strings.HasPrefix(name, p) {
				if out == nil {
					out = make(map[string]int64)
				}
				out[name] = v
				break
			}
		}
	}
	return out
}

// measureCache times the cold-vs-warm sweep: every selected app under
// three loss-parameter variants, twice, sharing one cache.
func measureCache(ctx context.Context, apps []*sring.Application, baseOpt sring.Options) (*cacheBench, error) {
	techs := []sring.Tech{sring.DefaultTech(), sring.DefaultTech(), sring.DefaultTech()}
	techs[1].SplitRatioDB = 3.5
	techs[2].PropagationDBPerMM = 0.1
	cache := sring.NewCache()
	pass := func() (time.Duration, error) {
		start := time.Now()
		for _, app := range apps {
			for _, tech := range techs {
				opt := baseOpt
				opt.Tech = tech
				opt.Cache = cache
				opt.Parallelism = 1
				if _, err := sring.SynthesizeContext(ctx, app, sring.MethodSRing, opt); err != nil {
					return 0, fmt.Errorf("%s: %w", app.Name, err)
				}
			}
		}
		return time.Since(start), nil
	}
	cold, err := pass()
	if err != nil {
		return nil, err
	}
	warm, err := pass()
	if err != nil {
		return nil, err
	}
	hits, misses := cache.Stats()
	cb := &cacheBench{ColdNs: cold.Nanoseconds(), WarmNs: warm.Nanoseconds(), Hits: hits, Misses: misses}
	if hits+misses > 0 {
		cb.HitRate = float64(hits) / float64(hits+misses)
	}
	return cb, nil
}

func main() {
	var (
		out       = flag.String("o", "", "output file (default BENCH_<yyyy-mm-dd>[-<tag>].json)")
		tag       = flag.String("tag", "", "suffix for the default output name: BENCH_<yyyy-mm-dd>-<tag>.json")
		force     = flag.Bool("force", false, "overwrite an existing snapshot file")
		full      = flag.Bool("full", false, "also benchmark the ORNoC/CTORing/XRing baselines")
		milp      = flag.Bool("milp", false, "enable the exact MILP wavelength assignment")
		milpLimit = flag.Duration("milp-timeout", sring.DefaultMILPTimeLimit, "per-solve MILP time limit")
		cutRounds = flag.Int("cut-rounds", 0, "with -milp, cutting-plane rounds per fractional node (0: solver default, negative: disable cuts)")
		decompose = flag.Bool("decompose", false, "with -milp, run the cluster-decomposed exact assignment")
		appsFlag  = flag.String("apps", "", "comma-separated registry app names to benchmark (default: the seven paper benchmarks)")
		trials    = flag.Int("cluster-trials", 0, "cap SRing's initial clustering trials (0 = unlimited, the paper's behaviour)")
		jstr      = flag.String("j", "0", "comma-separated Parallelism settings to time (0 = all CPUs, 1 = sequential), e.g. 1,4")
		compare   = flag.Bool("compare", false, "compare two snapshots: bench -compare old.json new.json")
		threshold = flag.Float64("threshold", 0.20, "with -compare, the relative ns/op / allocs/op / stage-p99 growth that counts as a regression")
		chrome    = flag.String("trace-chrome", "", "after the benchmarks, run one traced SRing pass and write it as Chrome trace-event JSON to this file")
		telemetry = flag.String("telemetry", "", "serve live telemetry (Prometheus /metrics, /debug/pprof/) on this address")
		teleHold  = flag.Duration("telemetry-hold", 0, "with -telemetry, keep the endpoint serving this long after the snapshot is written")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare wants exactly two snapshot paths, got %d", flag.NArg()))
		}
		if *threshold <= 0 {
			fatal(fmt.Errorf("-threshold must be positive, got %v", *threshold))
		}
		runCompare(flag.Arg(0), flag.Arg(1), *threshold)
		return
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	jvals, err := parseJobs(*jstr)
	if err != nil {
		fatal(err)
	}

	// The traced -trace-chrome pass runs after the timings so tracing cannot
	// perturb them; its recorder also backs the -telemetry /trace.json.
	var rec *sring.Recorder
	if *chrome != "" {
		rec = sring.NewRecorder()
	}
	if *telemetry != "" {
		shutdown, err := cli.ServeTelemetry(ctx, os.Stderr, "bench", *telemetry, *teleHold, rec.Snapshot)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		if *tag != "" {
			path = fmt.Sprintf("BENCH_%s-%s.json", date, *tag)
		} else {
			path = fmt.Sprintf("BENCH_%s.json", date)
		}
	}
	if !*force {
		if _, err := os.Stat(path); err == nil {
			fatal(fmt.Errorf("%s already exists; pass -force to overwrite or -tag to pick another name", path))
		}
	}

	methods := []sring.Method{sring.MethodSRing}
	if *full {
		methods = sring.Methods()
	}
	appsToRun := sring.Benchmarks()
	if *appsFlag != "" {
		appsToRun = nil
		for _, name := range strings.Split(*appsFlag, ",") {
			a, err := sring.Benchmark(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			appsToRun = append(appsToRun, a)
		}
	}
	baseOpt := sring.Options{UseMILP: *milp, DecomposeAssign: *decompose, MILPTimeLimit: *milpLimit, CutRounds: *cutRounds, ClusterTrials: *trials}

	snap := snapshot{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		MILP:      *milp,
		Decompose: *decompose,
	}
	for _, app := range appsToRun {
		for _, m := range methods {
			for _, j := range jvals {
				app, m, j := app, m, j
				opt := baseOpt
				opt.Parallelism = j
				var last *sring.Design
				before := sring.DefaultRegistry().Snapshot()
				r := testingBenchmark(func() error {
					d, err := sring.SynthesizeContext(ctx, app, m, opt)
					last = d
					return err
				})
				stageDelta := sring.DefaultRegistry().Snapshot().Sub(before)
				if r.err != nil {
					fmt.Fprintf(os.Stderr, "bench: %s/%s: %v\n", app.Name, m, r.err)
					os.Exit(1)
				}
				name := fmt.Sprintf("Synthesize/%s/%s", app.Name, m)
				if len(jvals) > 1 {
					name = fmt.Sprintf("%s/j=%d", name, j)
				}
				e := entry{
					Name:        name,
					Parallelism: j,
					NsPerOp:     r.nsPerOp,
					AllocsPerOp: r.allocsPerOp,
					BytesPerOp:  r.bytesPerOp,
					Runs:        r.n,
					StageNs:     stagePercentiles(stageDelta),
					Counters:    solverCounters(stageDelta),
				}
				milpNote := ""
				if last != nil && last.AssignStats != nil && last.AssignStats.MILPRan {
					gap := last.AssignStats.MILPGap
					// An infinite gap (no dual bound before the time limit)
					// is not representable in JSON; leave the field null so
					// the snapshot still writes.
					if !math.IsInf(gap, 0) && !math.IsNaN(gap) {
						e.MILPGap = &gap
					}
					e.MILPNodes = int64(last.AssignStats.MILPNodes)
					e.TimeLimitHit = last.AssignStats.MILPTimeLimitHit
					milpNote = fmt.Sprintf("  gap=%.4f", gap)
					if e.TimeLimitHit {
						milpNote += " (time limit)"
					}
				}
				snap.Entries = append(snap.Entries, e)
				fmt.Printf("%-32s %12.0f ns/op %10d allocs/op%s\n", name, r.nsPerOp, r.allocsPerOp, milpNote)
				if len(e.StageNs) > 0 {
					fmt.Printf("%-32s", "")
					for _, s := range stageNames {
						if p, ok := e.StageNs[s]; ok {
							fmt.Printf("  %s p50/p99 %s/%s", s,
								time.Duration(p.P50).Round(time.Microsecond),
								time.Duration(p.P99).Round(time.Microsecond))
						}
					}
					fmt.Println()
				}
			}
		}
	}

	cb, err := measureCache(ctx, appsToRun, baseOpt)
	if err != nil {
		fatal(err)
	}
	snap.Cache = cb
	fmt.Printf("%-32s %12d ns cold %12d ns warm   %d hits / %d misses\n",
		"Cache/SRing/sweep", cb.ColdNs, cb.WarmNs, cb.Hits, cb.Misses)

	if err := snap.Write(path, true); err != nil {
		fatal(err)
	}
	fmt.Printf("snapshot written to %s\n", path)

	if *chrome != "" {
		// One traced SRing pass over the selected apps, outside the timing
		// loops: worker spans land on their internal/par thread tracks.
		for _, app := range appsToRun {
			opt := baseOpt
			opt.Recorder = rec
			if _, err := sring.SynthesizeContext(ctx, app, sring.MethodSRing, opt); err != nil {
				fatal(err)
			}
		}
		cf, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(cf); err != nil {
			cf.Close()
			fatal(err)
		}
		if err := cf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace written to %s (load at ui.perfetto.dev)\n", *chrome)
	}
}

// parseJobs parses the -j comma list ("1,4") into parallelism values.
func parseJobs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad -j value %q: want a comma list of non-negative integers", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
