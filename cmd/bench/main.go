// Command bench snapshots the repository's headline benchmark timings to a
// dated JSON file, so performance can be compared across commits without
// re-parsing `go test -bench` output:
//
//	bench               writes BENCH_<yyyy-mm-dd>.json (SRing on all benchmarks)
//	bench -full         also times the three baseline methods
//	bench -o file.json  writes to an explicit path
//	bench -milp         enables the exact MILP assignment during timing
//
// Each entry carries ns/op plus the allocation counts from the Go
// benchmark harness (testing.Benchmark), one entry per method/benchmark
// pair, named like "Synthesize/MWD/SRing".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"sring"
)

// benchResult condenses a testing.BenchmarkResult plus any synthesis error.
type benchResult struct {
	nsPerOp     float64
	allocsPerOp int64
	bytesPerOp  int64
	n           int
	err         error
}

// testingBenchmark times fn with the standard benchmark harness (adaptive
// iteration counts, allocation accounting).
func testingBenchmark(fn func() error) benchResult {
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				runErr = err
				b.SkipNow()
			}
		}
	})
	if runErr != nil {
		return benchResult{err: runErr}
	}
	return benchResult{
		nsPerOp:     float64(r.NsPerOp()),
		allocsPerOp: r.AllocsPerOp(),
		bytesPerOp:  r.AllocedBytesPerOp(),
		n:           r.N,
	}
}

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Runs        int     `json:"runs"`
}

type snapshot struct {
	Date      string  `json:"date"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	MILP      bool    `json:"milp"`
	Entries   []entry `json:"entries"`
}

func main() {
	var (
		out  = flag.String("o", "", "output file (default BENCH_<yyyy-mm-dd>.json)")
		full = flag.Bool("full", false, "also benchmark the ORNoC/CTORing/XRing baselines")
		milp = flag.Bool("milp", false, "enable the exact MILP wavelength assignment")
	)
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	methods := []sring.Method{sring.MethodSRing}
	if *full {
		methods = sring.Methods()
	}
	opt := sring.Options{UseMILP: *milp}

	snap := snapshot{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MILP:      *milp,
	}
	for _, app := range sring.Benchmarks() {
		for _, m := range methods {
			app, m := app, m
			r := testingBenchmark(func() error {
				_, err := sring.Synthesize(app, m, opt)
				return err
			})
			if r.err != nil {
				fmt.Fprintf(os.Stderr, "bench: %s/%s: %v\n", app.Name, m, r.err)
				os.Exit(1)
			}
			name := fmt.Sprintf("Synthesize/%s/%s", app.Name, m)
			snap.Entries = append(snap.Entries, entry{
				Name:        name,
				NsPerOp:     r.nsPerOp,
				AllocsPerOp: r.allocsPerOp,
				BytesPerOp:  r.bytesPerOp,
				Runs:        r.n,
			})
			fmt.Printf("%-28s %12.0f ns/op %10d allocs/op\n", name, r.nsPerOp, r.allocsPerOp)
		}
	}

	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("snapshot written to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
