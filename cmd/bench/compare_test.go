package main

import (
	"strings"
	"testing"

	"sring"
)

func snapWith(entries ...entry) *snapshot {
	return &snapshot{Date: "2026-01-01", Entries: entries}
}

func baseEntry() entry {
	return entry{
		Name:        "Synthesize/MWD/SRing",
		NsPerOp:     1e6,
		AllocsPerOp: 1000,
		StageNs: map[string]stagePct{
			"construct": {P50: 2e6, P99: 4e6},
			"layout":    {P50: 1e4, P99: 5e4},
		},
	}
}

// An injected stage-p99 regression beyond the threshold must gate, naming
// the stage.
func TestCompareGatesOnP99(t *testing.T) {
	oldE, newE := baseEntry(), baseEntry()
	newE.StageNs = map[string]stagePct{
		"construct": {P50: 2e6, P99: 10e6}, // 2.5x the old p99
		"layout":    {P50: 1e4, P99: 5e4},
	}
	regressed := compareSnapshots(snapWith(oldE), snapWith(newE), 0.20)
	if len(regressed) != 1 || !strings.Contains(regressed[0], "p99(construct)") {
		t.Fatalf("regressed = %v, want one p99(construct) entry", regressed)
	}
}

// Stages whose old p99 sits below the absolute floor never gate: relative
// thresholds on microsecond stages would flag scheduler noise.
func TestCompareP99Floor(t *testing.T) {
	oldE, newE := baseEntry(), baseEntry()
	newE.StageNs = map[string]stagePct{
		"construct": {P50: 2e6, P99: 4e6},
		"layout":    {P50: 1e4, P99: 5e5}, // 10x, but old p99 = 50 µs < 1 ms floor
	}
	if regressed := compareSnapshots(snapWith(oldE), snapWith(newE), 0.20); len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none (below the p99 floor)", regressed)
	}
}

// Entries lacking stage data (older snapshots) compare on ns/op alone —
// adding stage_ns must not fail the comparison that introduces it.
func TestCompareMissingStageNs(t *testing.T) {
	oldE := baseEntry()
	oldE.StageNs = nil
	if regressed := compareSnapshots(snapWith(oldE), snapWith(baseEntry()), 0.20); len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none", regressed)
	}
}

// The pre-existing gates still fire alongside the new one.
func TestCompareGatesOnNsPerOp(t *testing.T) {
	newE := baseEntry()
	newE.NsPerOp = 2e6
	regressed := compareSnapshots(snapWith(baseEntry()), snapWith(newE), 0.20)
	if len(regressed) != 1 || !strings.Contains(regressed[0], "ns/op") {
		t.Fatalf("regressed = %v, want one ns/op entry", regressed)
	}
}

// When both runs hit the time limit, a node-throughput drop beyond the
// threshold gates: same budget, fewer explored nodes means the solver got
// slower.
func TestCompareGatesOnMILPNodes(t *testing.T) {
	oldE, newE := baseEntry(), baseEntry()
	oldE.MILPNodes, oldE.TimeLimitHit = 400, true
	newE.MILPNodes, newE.TimeLimitHit = 200, true // half the throughput
	regressed := compareSnapshots(snapWith(oldE), snapWith(newE), 0.20)
	if len(regressed) != 1 || !strings.Contains(regressed[0], "milp_nodes") {
		t.Fatalf("regressed = %v, want one milp_nodes entry", regressed)
	}
}

// A run that newly finishes within the limit must not gate on nodes:
// fewer nodes then means a smaller tree, not a slower solver. Neither
// does a small fluctuation inside the threshold.
func TestCompareMILPNodesNonRegressions(t *testing.T) {
	oldE, finished := baseEntry(), baseEntry()
	oldE.MILPNodes, oldE.TimeLimitHit = 400, true
	finished.MILPNodes, finished.TimeLimitHit = 50, false // proved optimal early
	if regressed := compareSnapshots(snapWith(oldE), snapWith(finished), 0.20); len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none (search finished within the limit)", regressed)
	}
	jitter := baseEntry()
	jitter.MILPNodes, jitter.TimeLimitHit = 340, true // -15% < 20% threshold
	if regressed := compareSnapshots(snapWith(oldE), snapWith(jitter), 0.20); len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none (inside threshold)", regressed)
	}
}

// stagePercentiles maps registry deltas onto the entry schema, skipping
// stages that never ran.
func TestStagePercentiles(t *testing.T) {
	reg := sring.NewRegistry()
	before := reg.Snapshot()
	reg.Histogram("pipeline.stage.construct.ns").Record(1000)
	reg.Histogram("pipeline.stage.construct.ns").Record(3000)
	got := stagePercentiles(reg.Snapshot().Sub(before))
	if len(got) != 1 {
		t.Fatalf("stages = %v, want construct only", got)
	}
	p, ok := got["construct"]
	if !ok || p.P99 < p.P50 || p.P99 < 1000 {
		t.Fatalf("construct percentiles = %+v", p)
	}
	if stagePercentiles(reg.Snapshot().Sub(reg.Snapshot())) != nil {
		t.Error("empty delta should yield nil stage map")
	}
}

// Snapshots with different entry sets gate only on the intersection, and
// entryNameDiff reports each side's exclusive names for the warning.
func TestCompareDifferingEntrySets(t *testing.T) {
	oldOnly := baseEntry()
	oldOnly.Name = "Synthesize/VOPD/SRing"
	newOnly := baseEntry()
	newOnly.Name = "Serve/MWD/SRing"
	newOnly.NsPerOp = 9e9 // huge, but unmatched entries must not gate

	oldSnap := snapWith(baseEntry(), oldOnly)
	newSnap := snapWith(baseEntry(), newOnly)

	if regressed := compareSnapshots(oldSnap, newSnap, 0.20); len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none: unmatched entries must not gate", regressed)
	}
	gotOld, gotNew := entryNameDiff(oldSnap, newSnap)
	if len(gotOld) != 1 || gotOld[0] != "Synthesize/VOPD/SRing" {
		t.Errorf("onlyOld = %v, want [Synthesize/VOPD/SRing]", gotOld)
	}
	if len(gotNew) != 1 || gotNew[0] != "Serve/MWD/SRing" {
		t.Errorf("onlyNew = %v, want [Serve/MWD/SRing]", gotNew)
	}
	sameOld, sameNew := entryNameDiff(oldSnap, oldSnap)
	if len(sameOld) != 0 || len(sameNew) != 0 {
		t.Errorf("identical snapshots diff = %v / %v, want empty", sameOld, sameNew)
	}
}
