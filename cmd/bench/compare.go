package main

// Snapshot comparison: `bench -compare old.json new.json` prints a
// benchstat-style delta table for the entries the two snapshots share and
// exits non-zero when anything regressed beyond the threshold, turning the
// dated BENCH_*.json files from write-only records into a gate.
//
// A regression is:
//   - ns/op or allocs/op growing by more than -threshold (default 20%), or
//   - a pipeline stage's p99 latency growing by more than -threshold, when
//     the old p99 was at least 1 ms (see p99FloorNs), or
//   - the MILP optimality gap widening by more than one percentage point
//     (gaps are small ratios, frequently exactly 0, so a relative test
//     would divide by zero exactly where the comparison matters most), or
//   - MILP node throughput dropping by more than -threshold on entries
//     where both runs hit the time limit: with a fixed wall-clock budget
//     on both sides, explored nodes per budget is the solver's progress
//     rate, and a drop means the kernel got slower even if the gap
//     happens to round the same. A run that newly finishes within the
//     limit never gates — fewer nodes then means a smaller tree, not a
//     slower solver.
//
// Entries present in only one snapshot are listed but never gate — adding
// a benchmark must not fail the comparison that introduces it.

import (
	"fmt"
	"math"
	"os"

	"sring/internal/benchfmt"
)

// loadSnapshot reads one BENCH_*.json file.
func loadSnapshot(path string) (*snapshot, error) {
	return benchfmt.Load(path)
}

// gapRegressionTol is the absolute milp_gap widening that counts as a
// regression: one percentage point of relative optimality gap.
const gapRegressionTol = 0.01

// p99FloorNs is the old stage-p99 below which the per-stage latency gate
// stays silent: sub-millisecond stages flap too much at benchmark sample
// counts for a relative threshold to separate signal from scheduler noise.
const p99FloorNs = int64(1e6)

// deltaPct formats the relative change from o to n as benchstat does;
// "~" marks changes below one percent (noise at these sample counts).
func deltaPct(o, n float64) string {
	if o == 0 {
		if n == 0 {
			return "~"
		}
		return "+inf%"
	}
	d := (n - o) / o * 100
	if math.Abs(d) < 1 {
		return "~"
	}
	return fmt.Sprintf("%+.2f%%", d)
}

// compareSnapshots prints the delta table to stdout and returns the names
// of the entries that regressed beyond threshold (the fraction, e.g. 0.20).
func compareSnapshots(oldSnap, newSnap *snapshot, threshold float64) []string {
	oldByName := make(map[string]entry, len(oldSnap.Entries))
	for _, e := range oldSnap.Entries {
		oldByName[e.Name] = e
	}

	var regressed []string
	regress := func(o, n float64) bool {
		return o > 0 && n > o*(1+threshold)
	}

	fmt.Printf("%-34s %14s %14s %9s %12s %12s %9s %10s %10s %9s %10s %10s %9s\n",
		"name", "old ns/op", "new ns/op", "delta",
		"old allocs", "new allocs", "delta",
		"old nodes", "new nodes", "delta", "old gap", "new gap", "delta")
	for _, n := range newSnap.Entries {
		o, ok := oldByName[n.Name]
		if !ok {
			fmt.Printf("%-34s %14s %14.0f %9s %12s %12d %9s\n",
				n.Name, "-", n.NsPerOp, "new", "-", n.AllocsPerOp, "new")
			continue
		}
		delete(oldByName, n.Name)

		var why []string
		if regress(o.NsPerOp, n.NsPerOp) {
			why = append(why, "ns/op")
		}
		if regress(float64(o.AllocsPerOp), float64(n.AllocsPerOp)) {
			why = append(why, "allocs/op")
		}
		for _, s := range stageNames {
			op, okO := o.StageNs[s]
			np, okN := n.StageNs[s]
			if okO && okN && op.P99 >= p99FloorNs && regress(float64(op.P99), float64(np.P99)) {
				why = append(why, "p99("+s+")")
			}
		}
		// Node-throughput gate: only meaningful when both runs were cut
		// off by the same wall-clock budget, so the node counts measure
		// rate rather than tree size.
		if o.TimeLimitHit && n.TimeLimitHit && o.MILPNodes > 0 &&
			float64(n.MILPNodes) < float64(o.MILPNodes)*(1-threshold) {
			why = append(why, "milp_nodes")
		}
		nodeCols := [3]string{"-", "-", ""}
		if o.MILPNodes > 0 || n.MILPNodes > 0 {
			nodeCols[0] = fmt.Sprintf("%d", o.MILPNodes)
			nodeCols[1] = fmt.Sprintf("%d", n.MILPNodes)
			nodeCols[2] = deltaPct(float64(o.MILPNodes), float64(n.MILPNodes))
		}
		gapCols := [3]string{"-", "-", ""}
		if o.MILPGap != nil && n.MILPGap != nil {
			gapCols[0] = fmt.Sprintf("%.4f", *o.MILPGap)
			gapCols[1] = fmt.Sprintf("%.4f", *n.MILPGap)
			switch {
			case *n.MILPGap > *o.MILPGap+gapRegressionTol:
				gapCols[2] = "WORSE"
				why = append(why, "milp_gap")
			case *o.MILPGap > *n.MILPGap+gapRegressionTol:
				gapCols[2] = "better"
			default:
				gapCols[2] = "~"
			}
		} else if n.MILPGap != nil {
			gapCols[1] = fmt.Sprintf("%.4f", *n.MILPGap)
		}

		fmt.Printf("%-34s %14.0f %14.0f %9s %12d %12d %9s %10s %10s %9s %10s %10s %9s\n",
			n.Name, o.NsPerOp, n.NsPerOp, deltaPct(o.NsPerOp, n.NsPerOp),
			o.AllocsPerOp, n.AllocsPerOp,
			deltaPct(float64(o.AllocsPerOp), float64(n.AllocsPerOp)),
			nodeCols[0], nodeCols[1], nodeCols[2],
			gapCols[0], gapCols[1], gapCols[2])
		if len(why) > 0 {
			regressed = append(regressed, fmt.Sprintf("%s (%s)", n.Name, joinWhy(why)))
		}
	}
	for _, o := range oldSnap.Entries {
		if _, gone := oldByName[o.Name]; gone {
			fmt.Printf("%-34s %14.0f %14s %9s\n", o.Name, o.NsPerOp, "-", "gone")
		}
	}
	return regressed
}

// entryNameDiff returns the entry names present in only one snapshot, each
// side sorted in its snapshot's order. Such entries never gate — only the
// intersection is compared — but a silent mismatch would let a comparison
// "pass" while gating a different benchmark set than the reader assumes
// (a renamed app, a dropped method, snapshots from different producers), so
// runCompare warns about them.
func entryNameDiff(oldSnap, newSnap *snapshot) (onlyOld, onlyNew []string) {
	oldNames := make(map[string]bool, len(oldSnap.Entries))
	for _, e := range oldSnap.Entries {
		oldNames[e.Name] = true
	}
	newNames := make(map[string]bool, len(newSnap.Entries))
	for _, e := range newSnap.Entries {
		newNames[e.Name] = true
	}
	for _, e := range oldSnap.Entries {
		if !newNames[e.Name] {
			onlyOld = append(onlyOld, e.Name)
		}
	}
	for _, e := range newSnap.Entries {
		if !oldNames[e.Name] {
			onlyNew = append(onlyNew, e.Name)
		}
	}
	return onlyOld, onlyNew
}

func joinWhy(why []string) string {
	s := why[0]
	for _, w := range why[1:] {
		s += ", " + w
	}
	return s
}

// runCompare is the -compare entry point: load both snapshots, print the
// table, and exit 1 if anything regressed beyond the threshold.
func runCompare(oldPath, newPath string, threshold float64) {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		fatal(err)
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		fatal(err)
	}
	regressed := compareSnapshots(oldSnap, newSnap, threshold)
	if onlyOld, onlyNew := entryNameDiff(oldSnap, newSnap); len(onlyOld) > 0 || len(onlyNew) > 0 {
		fmt.Fprintf(os.Stderr, "bench: warning: snapshots cover different entry sets — only the %d shared entr%s gated\n",
			len(newSnap.Entries)-len(onlyNew), plural(len(newSnap.Entries)-len(onlyNew)))
		for _, n := range onlyOld {
			fmt.Fprintf(os.Stderr, "  only in %s: %s\n", oldPath, n)
		}
		for _, n := range onlyNew {
			fmt.Fprintf(os.Stderr, "  only in %s: %s\n", newPath, n)
		}
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d entr%s regressed more than %.0f%%:\n",
			len(regressed), plural(len(regressed)), threshold*100)
		for _, r := range regressed {
			fmt.Fprintln(os.Stderr, "  ", r)
		}
		os.Exit(1)
	}
	fmt.Printf("no regressions beyond %.0f%%\n", threshold*100)
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
