package sring

import (
	"testing"
	"time"
)

func TestSynthesizeAllMethodsAllBenchmarks(t *testing.T) {
	for _, app := range Benchmarks() {
		for _, m := range Methods() {
			d, err := Synthesize(app, m, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", app.Name, m, err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("%s/%s: invalid design: %v", app.Name, m, err)
			}
			met, err := d.Metrics()
			if err != nil {
				t.Fatalf("%s/%s: %v", app.Name, m, err)
			}
			if met.NumWavelengths < 1 || met.TotalLaserPowerMW <= 0 {
				t.Errorf("%s/%s: degenerate metrics %+v", app.Name, m, met)
			}
		}
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := Synthesize(MWD(), Method("bogus"), Options{}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestEvaluateReturnsAllMethods(t *testing.T) {
	res, err := Evaluate(MWD(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("Evaluate returned %d methods", len(res))
	}
	for _, m := range Methods() {
		if res[m] == nil {
			t.Errorf("missing metrics for %s", m)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	for _, m := range Methods() {
		a, err := Synthesize(VOPD(), m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Synthesize(VOPD(), m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ma, _ := a.Metrics()
		mb, _ := b.Metrics()
		if ma.TotalLaserPowerMW != mb.TotalLaserPowerMW || ma.NumWavelengths != mb.NumWavelengths {
			t.Errorf("%s not deterministic", m)
		}
	}
}

func TestCustomTech(t *testing.T) {
	tech := DefaultTech()
	tech.SplitRatioDB = 4 // pessimistic splitters
	d, err := Synthesize(MWD(), MethodORNoC, Options{Tech: tech})
	if err != nil {
		t.Fatal(err)
	}
	met, err := d.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	base, err := Synthesize(MWD(), MethodORNoC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mBase, _ := base.Metrics()
	if met.WorstILAlldB <= mBase.WorstILAlldB {
		t.Error("pessimistic splitter loss should raise il_w_all")
	}
}

// The paper's Table II: SRing synthesis finishes within seconds per case.
func TestSRingRuntimeSeconds(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime check skipped in -short mode")
	}
	for _, app := range Benchmarks() {
		start := time.Now()
		if _, err := Synthesize(app, MethodSRing, Options{}); err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Errorf("%s: SRing took %s, want seconds", app.Name, elapsed)
		}
	}
}

func TestPlaceAndSynthesize(t *testing.T) {
	// A bare task graph: all nodes at the origin.
	app := &Application{
		Name: "bare",
		Nodes: []Node{
			{ID: 0, Name: "a"}, {ID: 1, Name: "b"},
			{ID: 2, Name: "c"}, {ID: 3, Name: "d"},
		},
		Messages: []Message{
			{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
		},
	}
	d, err := PlaceAndSynthesize(app, MethodSRing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := d.App.Validate(); err != nil {
		t.Fatalf("placed app invalid: %v", err)
	}
	if d.App.MaxCommDistance() <= 0 {
		t.Error("placement degenerate")
	}
	// The input must remain unplaced (Place copies).
	if !app.Nodes[1].Pos.Eq(app.Nodes[0].Pos) {
		t.Error("input application was mutated")
	}
}

func TestPhysicalPDNOption(t *testing.T) {
	for _, m := range Methods() {
		abstract, err := Synthesize(MWD(), m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		routed, err := Synthesize(MWD(), m, Options{PhysicalPDN: true})
		if err != nil {
			t.Fatal(err)
		}
		if routed.PDN.Tree == nil {
			t.Errorf("%s: PhysicalPDN produced no tree", m)
		}
		ma, _ := abstract.Metrics()
		mr, _ := routed.Metrics()
		// Routed feeds are never shorter, so il_w_all can only grow.
		if mr.WorstILAlldB < ma.WorstILAlldB-1e-9 {
			t.Errorf("%s: physical PDN reduced il_w_all: %v -> %v", m, ma.WorstILAlldB, mr.WorstILAlldB)
		}
	}
}
