package sring

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// designFingerprint is everything about a synthesised design that the
// determinism guarantee covers: the structure (rings), the wavelength
// assignment, the solver statistics, and the evaluated metrics. Wall-clock
// fields (SynthesisTime) are deliberately excluded.
type designFingerprint struct {
	Rings       interface{}
	Assignment  interface{}
	AssignStats interface{}
	Metrics     *Metrics
}

func fingerprint(t *testing.T, d *Design) designFingerprint {
	t.Helper()
	met, err := d.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	return designFingerprint{
		Rings:       d.Rings,
		Assignment:  d.Assignment,
		AssignStats: d.AssignStats,
		Metrics:     met,
	}
}

// TestParallelSynthesisBitIdentical is the pipeline-level determinism
// contract: for every Table I benchmark and every method, synthesis with
// Parallelism 4 must produce the same design — rings, assignments, solver
// stats, metrics — as the fully sequential Parallelism 1 run.
func TestParallelSynthesisBitIdentical(t *testing.T) {
	for _, app := range Benchmarks() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for _, m := range Methods() {
				seq, err := Synthesize(app, m, Options{Parallelism: 1})
				if err != nil {
					t.Fatalf("%s sequential: %v", m, err)
				}
				par, err := Synthesize(app, m, Options{Parallelism: 4})
				if err != nil {
					t.Fatalf("%s parallel: %v", m, err)
				}
				fs, fp := fingerprint(t, seq), fingerprint(t, par)
				if !reflect.DeepEqual(fs, fp) {
					t.Errorf("%s: parallel design diverged from sequential\n got %+v\nwant %+v", m, fp, fs)
				}
			}
		})
	}
}

// TestParallelSynthesisBitIdenticalMILP repeats the contract with the exact
// MILP assignment enabled (SRing, the paper's method) — the configuration
// where the parallel branch-and-bound actually works. On benchmarks above
// the MILP size gate the solve is skipped identically on both sides, which
// the AssignStats comparison also checks.
//
// The determinism guarantee covers searches that complete within their
// limits; a solve that hits its time limit stops at a wall-clock-dependent
// node and is not reproducible even sequentially, so those benchmarks are
// skipped here (with the limit visible in the skip message).
func TestParallelSynthesisBitIdenticalMILP(t *testing.T) {
	const budget = 5 * time.Second
	for _, app := range Benchmarks() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			opts := Options{Parallelism: 1, UseMILP: true, MILPTimeLimit: budget}
			seq, err := Synthesize(app, MethodSRing, opts)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			if st := seq.AssignStats; st != nil && st.MILPRan && !st.MILPExact {
				t.Skipf("MILP hit the %s time limit; time-limited searches are timing-dependent by design", budget)
			}
			opts.Parallelism = 4
			par, err := Synthesize(app, MethodSRing, opts)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			fs, fp := fingerprint(t, seq), fingerprint(t, par)
			if !reflect.DeepEqual(fs, fp) {
				t.Errorf("parallel MILP design diverged from sequential\n got %+v\nwant %+v", fp, fs)
			}
		})
	}
}

// TestWorkStealingFingerprintDeterministic pins the work-stealing pool's
// determinism end to end: for VOPD and D26, SRing synthesis with the exact
// MILP at Parallelism 1, 2 and 8 must produce byte-identical AssignStats —
// including MILPNodeFingerprint, the FNV-1a fold of the explored node
// sequence, which detects any reordering of the branch-and-bound commits
// even when the final design happens to agree. D26 sits above the MILP
// size gate, so both sides must skip the solve identically
// (MILPRan=false, fingerprint 0), which the comparison also checks.
func TestWorkStealingFingerprintDeterministic(t *testing.T) {
	const budget = 5 * time.Second
	for _, app := range []*Application{VOPD(), D26()} {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			opts := Options{Parallelism: 1, UseMILP: true, MILPTimeLimit: budget}
			seq, err := Synthesize(app, MethodSRing, opts)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			st := seq.AssignStats
			if st != nil && st.MILPRan && !st.MILPExact {
				t.Skipf("MILP hit the %s time limit; time-limited searches are timing-dependent by design", budget)
			}
			if st != nil && st.MILPRan && st.MILPNodes > 0 && st.MILPNodeFingerprint == 0 {
				t.Fatalf("sequential run explored %d nodes but reported fingerprint 0", st.MILPNodes)
			}
			for _, workers := range []int{2, 8} {
				opts.Parallelism = workers
				par, err := Synthesize(app, MethodSRing, opts)
				if err != nil {
					t.Fatalf("parallelism %d: %v", workers, err)
				}
				if !reflect.DeepEqual(seq.AssignStats, par.AssignStats) {
					t.Errorf("parallelism %d: AssignStats diverged\n got %+v\nwant %+v",
						workers, par.AssignStats, seq.AssignStats)
				}
			}
		})
	}
}

// TestEvaluateParallelMatchesSequential: the Evaluate fan-out must return
// the same per-method metrics as the sequential loop.
func TestEvaluateParallelMatchesSequential(t *testing.T) {
	seq, err := Evaluate(MWD(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Evaluate(MWD(), Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel Evaluate diverged:\n got %+v\nwant %+v", par, seq)
	}
}

// TestEvaluatePartialResults: a failure must carry per-method errors of
// type MethodErrors rather than aborting with a bare error, and the
// returned map must still be usable.
func TestEvaluatePartialResults(t *testing.T) {
	bad := DefaultTech()
	bad.DropDB = -1 // rejected by validation in every method
	res, err := Evaluate(MWD(), Options{Tech: bad})
	if err == nil {
		t.Fatal("Evaluate with an invalid Tech succeeded")
	}
	var me MethodErrors
	ok := false
	if me, ok = err.(MethodErrors); !ok {
		t.Fatalf("Evaluate error is %T, want MethodErrors", err)
	}
	if len(me) != len(Methods()) {
		t.Errorf("%d method errors, want %d (all methods share Tech validation)", len(me), len(Methods()))
	}
	if res == nil {
		t.Error("Evaluate returned a nil map alongside MethodErrors; want the (possibly empty) partial results")
	}
	if len(res) != 0 {
		t.Errorf("%d methods succeeded with an invalid Tech", len(res))
	}
	msg := me.Error()
	for _, m := range Methods() {
		if !strings.Contains(msg, string(m)) {
			t.Errorf("MethodErrors message %q does not mention %s", msg, m)
		}
	}
}

// TestTechNormalization: the zero value means DefaultTech, a negative loss
// is rejected, and a partially populated struct is rejected with a hint —
// uniformly across methods.
func TestTechNormalization(t *testing.T) {
	partial := Tech{PropagationDBPerMM: 0.3, DropDB: 0.5} // no split ratio, no sensitivity
	for _, m := range Methods() {
		if _, err := Synthesize(MWD(), m, Options{Tech: partial}); err == nil {
			t.Errorf("%s accepted a partially populated Tech", m)
		} else if !strings.Contains(err.Error(), "loss.Default()") {
			t.Errorf("%s: error %q does not point at loss.Default()", m, err)
		}
		neg := DefaultTech()
		neg.CrossingDB = -0.1
		if _, err := Synthesize(MWD(), m, Options{Tech: neg}); err == nil {
			t.Errorf("%s accepted a negative loss", m)
		}
	}
}
