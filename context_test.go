package sring

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// Satellite regression: Evaluate/Synthesize on a nil application must return
// an error, not panic (the old Evaluate dereferenced app.Name while building
// its per-method error messages).
func TestNilApplication(t *testing.T) {
	if _, err := Synthesize(nil, MethodSRing, Options{}); err == nil || !strings.Contains(err.Error(), "nil application") {
		t.Errorf("Synthesize(nil) err = %v, want nil-application error", err)
	}
	if _, err := PlaceAndSynthesize(nil, MethodSRing, Options{}); err == nil || !strings.Contains(err.Error(), "nil application") {
		t.Errorf("PlaceAndSynthesize(nil) err = %v, want nil-application error", err)
	}
	if _, err := Evaluate(nil, Options{}); err == nil || !strings.Contains(err.Error(), "nil application") {
		t.Errorf("Evaluate(nil) err = %v, want nil-application error", err)
	}
}

// An already-cancelled context fails fast at the pipeline entry with the
// context error wrapped — no design, no partial work.
func TestSynthesizeContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := SynthesizeContext(ctx, MWD(), MethodSRing, Options{})
	if d != nil {
		t.Errorf("pre-cancelled synthesis returned a design: %v", d)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
}

// EvaluateContext under a pre-cancelled context reports every method as not
// started, each carrying the context error.
func TestEvaluateContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mets, err := EvaluateContext(ctx, MWD(), Options{Parallelism: 1})
	if len(mets) != 0 {
		t.Errorf("pre-cancelled evaluate returned %d metrics, want 0", len(mets))
	}
	var merr MethodErrors
	if !errors.As(err, &merr) {
		t.Fatalf("err = %T %v, want MethodErrors", err, err)
	}
	if len(merr) != len(Methods()) {
		t.Fatalf("MethodErrors holds %d methods, want %d: %v", len(merr), len(Methods()), merr)
	}
	for m, e := range merr {
		if !errors.Is(e, context.Canceled) {
			t.Errorf("%s: err = %v, want wrapped context.Canceled", m, e)
		}
	}
}

// A cancellation striking mid-solve degrades gracefully: the engine returns
// the best feasible design flagged Cancelled — not an error — and returns
// promptly rather than running out the MILP time limit. MPEG's exact solve
// runs well past the cancel point, so the cancel lands inside the solver.
func TestSynthesizeContextCancelMidSolve(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(250 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	d, err := SynthesizeContext(ctx, MPEG(), MethodSRing, Options{
		UseMILP:       true,
		MILPTimeLimit: 30 * time.Second,
		Parallelism:   1,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled synthesis returned error %v, want flagged design", err)
	}
	if !d.Cancelled {
		t.Error("design not flagged Cancelled")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("cancelled design invalid: %v", err)
	}
	if d.Assignment == nil || d.Assignment.NumLambda == 0 {
		t.Error("cancelled design carries no incumbent assignment")
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancelled synthesis took %v, want prompt return (limit was 30s)", elapsed)
	}
}

// cacheFingerprint captures everything the cache must reproduce bit-identically:
// the wavelength assignment and every evaluated metric.
func cacheFingerprint(t *testing.T, d *Design) string {
	t.Helper()
	m, err := d.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%v|%d|%+v", d.Assignment.Lambda, d.Assignment.NumLambda, *m)
}

// Cached synthesis must be bit-identical to uncached synthesis: same
// assignment, same metrics, across repeated hits against a shared cache.
func TestCacheBitIdentical(t *testing.T) {
	apps := []*Application{MWD(), VOPD(), PM24()}
	cache := NewCache()
	for _, app := range apps {
		for _, method := range Methods() {
			cold, err := Synthesize(app, method, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := cacheFingerprint(t, cold)
			for pass := 0; pass < 2; pass++ {
				d, err := Synthesize(app, method, Options{Cache: cache})
				if err != nil {
					t.Fatal(err)
				}
				if got := cacheFingerprint(t, d); got != want {
					t.Errorf("%s/%s pass %d: cached fingerprint diverged\n got %s\nwant %s",
						app.Name, method, pass, got, want)
				}
			}
		}
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Error("cache recorded no hits across repeated synthesis")
	}
}

// A sweep that varies only the technology parameters must reuse the
// construction and layout stages (they are tech-independent) and report the
// reuse through the pipeline.cache.* counters.
func TestCacheSkipsUpstreamStagesAcrossTechs(t *testing.T) {
	cache := NewCache()
	app := MWD()
	if _, err := Synthesize(app, MethodSRing, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	tech := DefaultTech()
	tech.SplitRatioDB = 3.5
	rec := NewRecorder()
	if _, err := Synthesize(app, MethodSRing, Options{Cache: cache, Tech: tech, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	counters := rec.Snapshot().Counters
	for _, stage := range []string{"construct", "layout"} {
		if got := counters["pipeline.cache."+stage+".hits"]; got != 1 {
			t.Errorf("pipeline.cache.%s.hits = %d, want 1 (stage is tech-independent)", stage, got)
		}
	}
	// Loss pricing depends on the tech, so the changed tech must miss.
	if got := counters["pipeline.cache.loss.hits"]; got != 0 {
		t.Errorf("pipeline.cache.loss.hits = %d, want 0 (tech changed)", got)
	}
	if hits, misses := cache.Stats(); hits < 2 || misses == 0 {
		t.Errorf("cache stats = %d hits / %d misses, want >=2 hits and >0 misses", hits, misses)
	}
}
